"""Stdlib HTTP service for online tier assignment.

A thin serving layer over :mod:`repro.serve.registry` and
:mod:`repro.serve.engine`: a ``ThreadingHTTPServer`` (no third-party web
framework) exposing

- ``POST /assign`` -- assign tiers to a batch of ``<download, upload>``
  tuples against a registered model (selected by city / isp /
  config_hash; defaults to the configured city's most recent model);
- ``GET /models``  -- the registry's records (staleness metadata
  included);
- ``GET /healthz`` -- liveness plus request counters, loaded-model
  count, per-model drift status, and active alerts;
- ``GET /metrics`` -- Prometheus text exposition of the service's
  dedicated registry (cumulative totals plus windowed rates and
  latency quantiles; see docs/ALERTING.md);
- ``POST /reload`` -- hot-swap models: drop loaded state (optionally
  limited to a ``{"slugs": [...]}`` body) so the next request resolves
  the freshest registration.  The refit scheduler
  (:mod:`repro.stream.scheduler`) calls this after registering a
  drift-triggered refit; see docs/STREAMING.md.

Every request gets a fresh ``trace_id`` (echoed in the ``X-Trace-Id``
response header, ``/assign`` responses, and error JSON) and — when the
id passes the ``trace_sample_rate`` coin — runs under a
``serve.request`` span carrying ``method`` / ``path`` / ``status`` /
``trace_id``.  Requests feed the ``serve.requests`` counter, the
``serve.errors`` (+ per-class ``serve.errors_4xx`` / ``serve.errors_5xx``)
counters, and per-endpoint / per-status-class latency histograms, into
both the process-global registry (when observability is on) and a
dedicated always-on :class:`~repro.obs.metrics.MetricsRegistry` that
backs ``/metrics``.  Incoming tuples also stream into a dedicated
:class:`~repro.obs.quality.QualityMonitor`; the drift check compares
each model's observed download/upload means against the
``training_stats`` recorded at registration and flags models whose
traffic has moved more than ``drift_rel_threshold`` (relative) after
``drift_min_samples`` observations.  An :class:`~repro.obs.alerts.
AlertEngine` evaluates declarative rules over the windowed metrics and
the drift verdicts on a background loop.

Shutdown is graceful: ``serve_until_shutdown`` installs
SIGTERM/SIGINT handlers that stop the accept loop, then drains
in-flight handler threads (``daemon_threads`` stays off and
``server_close`` joins them) and closes the micro-batchers, so a
terminated server never drops an accepted request.
"""

from __future__ import annotations

import json
import queue
import re
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.alerts import (
    AlertEngine,
    AlertEvaluator,
    default_serve_rules,
    load_rules,
)
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.quality import QualityMonitor
from repro.obs.trace import new_trace_id, should_sample, span, use_trace_id
from repro.serve.engine import (
    BatcherClosedError,
    MicroBatcher,
    QuantizedLookup,
    TierAssigner,
)
from repro.serve.registry import (
    ModelKey,
    ModelRecord,
    ModelRegistry,
    shard_for,
)

log = get_logger("serve.server")

__all__ = [
    "AssignmentService",
    "ServeConfig",
    "ServeServer",
    "build_server",
    "serve_until_shutdown",
]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the assignment service."""

    host: str = "127.0.0.1"
    port: int = 8000
    default_city: str = ""  # model picked when a request names none
    request_timeout_s: float = 10.0  # per-connection socket timeout
    max_body_bytes: int = 8 * 1024 * 1024  # request bodies above -> 413
    drift_rel_threshold: float = 0.5  # |obs - train| / train mean
    drift_min_samples: int = 200  # observations before drift applies
    micro_batch: int = 256
    micro_flush_interval_s: float = 0.005
    micro_max_pending: int = 4096
    trace_sample_rate: float = 1.0  # fraction of requests spanned
    metrics_window_s: float = 60.0  # window rendered by GET /metrics
    alert_interval_s: float = 1.0  # evaluator period; <= 0 disables
    alert_log: str | None = None  # JSONL transition log path
    alert_rules_path: str | None = None  # JSON rules; None -> defaults
    shard: tuple[int, int] | None = None  # (index, total) (city, isp) shard
    mmap_models: bool = False  # load via the shared mmap sidecar
    quantized: bool = False  # serve via verified lookup tables


@dataclass
class _LoadedModel:
    """One model resolved for serving: assigner + provenance."""

    key: ModelKey
    record: ModelRecord
    assigner: TierAssigner
    lookup: QuantizedLookup | None = None  # verified quantized table
    batcher: MicroBatcher | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class AssignmentService:
    """Model resolution, assignment, and drift tracking for the server.

    Usable without HTTP (the CLI smoke test and the benchmark drive it
    directly): :meth:`assign_payload` implements the ``/assign``
    contract over plain dicts.
    """

    def __init__(self, registry: ModelRegistry, config: ServeConfig):
        self.registry = registry
        self.config = config
        self._lock = threading.Lock()
        self._loaded: dict[str, _LoadedModel] = {}
        # Dedicated monitor and registry: the service watches its own
        # traffic even when global observability is off; the registry
        # backs GET /metrics and the alert engine.
        self.quality = QualityMonitor()
        self.metrics = MetricsRegistry()
        rules = (
            load_rules(config.alert_rules_path)
            if config.alert_rules_path
            else default_serve_rules()
        )
        self.alerts = AlertEngine(
            rules,
            registry=self.metrics,
            drift_provider=self.drift_status,
            log_path=config.alert_log,
        )
        self._evaluator: AlertEvaluator | None = None
        self._started = time.monotonic()
        self.n_requests = 0
        self.n_errors = 0
        # Last drift verdict per model slug: serve.drift_flags counts
        # only not-drifted -> drifted *transitions*, so its rate tracks
        # drift events rather than /healthz or alert-loop polling.
        self._drift_flagged: dict[str, bool] = {}
        # Optional observer of successfully-assigned traffic, called as
        # tap(city, isp, downloads, uploads).  The stream lifecycle
        # (repro.stream.attach) points this at a StreamMonitor so live
        # serving traffic feeds the refit scheduler's windowed stats.
        self.stream_tap: Callable[[str, str, Any, Any], None] | None = None

    def start_alerting(self) -> None:
        """Start the background alert evaluator (idempotent)."""
        if self.config.alert_interval_s <= 0:
            return
        if self._evaluator is None:
            self._evaluator = AlertEvaluator(
                self.alerts, interval_s=self.config.alert_interval_s
            ).start()

    # -- model resolution ------------------------------------------------
    def resolve(
        self,
        city: str | None = None,
        isp: str | None = None,
        config_hash: str | None = None,
    ) -> _LoadedModel:
        """The loaded model matching the given selectors.

        Missing selectors match anything; ties resolve to the most
        recently registered record.  Raises ``KeyError`` when nothing
        matches.  A sharded service (``config.shard``) only matches
        models whose ``(city, isp)`` hash lands on its shard.
        """
        city = city or self.config.default_city or None
        shard = self.config.shard
        candidates = [
            record
            for record in self.registry.records()
            if (city is None or record.key.city == city)
            and (isp is None or record.key.isp == isp)
            and (config_hash is None or record.key.config_hash == config_hash)
            and (
                shard is None
                or shard_for(record.key.city, record.key.isp, shard[1])
                == shard[0]
            )
        ]
        if not candidates:
            raise KeyError(
                "no registered model matches "
                f"city={city!r} isp={isp!r} config_hash={config_hash!r}"
            )
        record = max(candidates, key=lambda r: r.created_s)
        return self._load(record.key)

    def _load(self, key: ModelKey) -> _LoadedModel:
        with self._lock:
            loaded = self._loaded.get(key.slug)
        if loaded is not None:
            return loaded
        if self.config.mmap_models:
            result, record = self.registry.load_shared(key)
        else:
            result, record = self.registry.load(key)
        assigner = TierAssigner(result)
        lookup = None
        if self.config.quantized and record.lookup:
            try:
                lookup = QuantizedLookup.from_dict(assigner, record.lookup)
            except ValueError as exc:
                log.warning(
                    "persisted lookup table rejected; serving exact path",
                    extra=kv(model=key.slug, error=str(exc)),
                )
        loaded = _LoadedModel(
            key=key, record=record, assigner=assigner, lookup=lookup
        )
        with self._lock:
            # Another thread may have raced us; keep the first.
            loaded = self._loaded.setdefault(key.slug, loaded)
            n_loaded = len(self._loaded)
        obs_metrics.gauge("serve.models_loaded").set(n_loaded)
        self.metrics.gauge("serve.models_loaded").set(n_loaded)
        return loaded

    def batcher_for(self, loaded: _LoadedModel) -> MicroBatcher:
        """The model's micro-batcher (created on first streaming use)."""
        with loaded.lock:
            if loaded.batcher is None:
                loaded.batcher = MicroBatcher(
                    loaded.assigner,
                    max_batch=self.config.micro_batch,
                    flush_interval_s=self.config.micro_flush_interval_s,
                    max_pending=self.config.micro_max_pending,
                )
            return loaded.batcher

    # -- assignment ------------------------------------------------------
    def assign_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Implement the ``/assign`` contract over plain dicts.

        Payload: ``{"downloads": [...], "uploads": [...]}`` plus
        optional ``city`` / ``isp`` / ``config_hash`` selectors and
        ``"stream": true`` to route single tuples through the
        micro-batching queue.  Raises ``ValueError`` for malformed
        payloads and ``KeyError`` when no model matches.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        downloads = payload.get("downloads")
        uploads = payload.get("uploads")
        if downloads is None or uploads is None:
            raise ValueError(
                "request must carry 'downloads' and 'uploads' arrays"
            )
        try:
            downloads = np.asarray(downloads, dtype=float)
            uploads = np.asarray(uploads, dtype=float)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"non-numeric speed values: {exc}") from exc
        loaded = self.resolve(
            city=payload.get("city"),
            isp=payload.get("isp"),
            config_hash=payload.get("config_hash"),
        )
        if payload.get("stream") and downloads.size == 1:
            try:
                tier, group = self.batcher_for(loaded).assign_one(
                    float(downloads[0]), float(uploads[0])
                )
            except BatcherClosedError:
                # A /reload hot-swap closed this model's batcher under
                # us.  Re-resolve (loading the fresh registration) and
                # retry once, so a swap never surfaces as a 5xx burst;
                # a second closure means real shutdown and propagates.
                loaded = self.resolve(
                    city=payload.get("city"),
                    isp=payload.get("isp"),
                    config_hash=payload.get("config_hash"),
                )
                tier, group = self.batcher_for(loaded).assign_one(
                    float(downloads[0]), float(uploads[0])
                )
            tiers = [tier]
            groups = [group]
            n_fallback = 0
        else:
            engine = loaded.lookup or loaded.assigner
            batch = engine.assign(downloads, uploads)
            tiers = batch.tiers.tolist()
            groups = batch.group_indices.tolist()
            n_fallback = batch.n_fallback
        # Observe only after assignment succeeded: a batch the engine
        # rejects with 400 (NaN/inf, mismatched lengths) or that timed
        # out in the queue must not shift the drift monitor's observed
        # means and fire false model_drift alerts.
        self._observe(loaded, downloads, uploads)
        return {
            "tiers": tiers,
            "group_indices": groups,
            "group_labels": loaded.assigner.group_labels(groups),
            "n_fallback": n_fallback,
            "model": {
                "city": loaded.key.city,
                "isp": loaded.key.isp,
                "config_hash": loaded.key.config_hash,
                "digest": loaded.record.digest,
            },
        }

    def _observe(
        self,
        loaded: _LoadedModel,
        downloads: np.ndarray,
        uploads: np.ndarray,
    ) -> None:
        slug = loaded.key.slug
        self.quality.field(f"serve.{slug}.download_mbps").observe_array(
            downloads
        )
        self.quality.field(f"serve.{slug}.upload_mbps").observe_array(
            uploads
        )
        tap = self.stream_tap
        if tap is not None:
            tap(loaded.key.city, loaded.key.isp, downloads, uploads)

    # -- drift -----------------------------------------------------------
    def drift_status(self) -> list[dict[str, Any]]:
        """Per-loaded-model drift verdicts against training_stats.

        Called by both ``/healthz`` and the background alert evaluator,
        so it must be poll-stable: ``serve.drift_flags`` (and the
        drift warning log line) fire only on a model's not-drifted ->
        drifted *transition*, not on every call while drifted.
        """
        with self._lock:
            loaded = list(self._loaded.values())
        out = []
        for model in loaded:
            directions = {}
            drifted = False
            for direction in ("download_mbps", "upload_mbps"):
                train = model.record.training_stats.get(direction)
                if not train or not train.get("mean"):
                    continue
                snap = self.quality.field(
                    f"serve.{model.key.slug}.{direction}"
                ).snapshot()
                n_obs = snap.count - snap.n_nan
                if n_obs < self.config.drift_min_samples:
                    directions[direction] = {
                        "status": "warming_up",
                        "n_observed": n_obs,
                    }
                    continue
                rel = abs(snap.mean - train["mean"]) / abs(train["mean"])
                direction_drifted = rel > self.config.drift_rel_threshold
                drifted = drifted or direction_drifted
                directions[direction] = {
                    "status": "drifted" if direction_drifted else "ok",
                    "n_observed": n_obs,
                    "observed_mean": snap.mean,
                    "training_mean": train["mean"],
                    "rel_deviation": rel,
                }
            with self._lock:
                was_drifted = self._drift_flagged.get(model.key.slug, False)
                self._drift_flagged[model.key.slug] = drifted
            if drifted and not was_drifted:
                obs_metrics.counter("serve.drift_flags").inc()
                self.metrics.counter("serve.drift_flags").inc()
                log.warning(
                    "serving traffic drifted from training distribution",
                    extra=kv(model=model.key.slug),
                )
            out.append(
                {
                    "model": model.key.slug,
                    "drifted": drifted,
                    "directions": directions,
                }
            )
        return out

    # -- health / lifecycle ----------------------------------------------
    def record_request(self) -> None:
        """Count a request (handler threads; ``+=`` alone is not atomic)."""
        with self._lock:
            self.n_requests += 1
        obs_metrics.counter("serve.requests").inc()
        self.metrics.counter("serve.requests").inc()

    def record_error(self) -> None:
        """Count a failed request (handler threads)."""
        with self._lock:
            self.n_errors += 1
        obs_metrics.counter("serve.errors").inc()
        self.metrics.counter("serve.errors").inc()

    def observe_http(
        self, endpoint: str, status: int, elapsed_s: float
    ) -> None:
        """Feed one finished request into the latency/status instruments.

        Writes to both the dedicated registry (always on, backs
        ``/metrics``) and the process-global one (a no-op unless the
        CLI installed a registry).
        """
        status_class = f"{status // 100}xx"
        for registry in (self.metrics, obs_metrics.get_registry()):
            registry.histogram("serve.request_latency_s").observe(
                elapsed_s
            )
            registry.histogram(f"serve.latency.{endpoint}").observe(
                elapsed_s
            )
            registry.counter(f"serve.status.{status_class}").inc()
            if status >= 500:
                registry.counter("serve.errors_5xx").inc()
            elif status >= 400:
                registry.counter("serve.errors_4xx").inc()

    def health(self) -> dict[str, Any]:
        with self._lock:
            n_loaded = len(self._loaded)
            n_requests = self.n_requests
            n_errors = self.n_errors
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 3),
            "models_registered": len(self.registry.records()),
            "models_loaded": n_loaded,
            "requests": n_requests,
            "errors": n_errors,
            "drift": self.drift_status(),
            # counts() first: its "active" tally is superseded by the
            # full list of active alerts.
            "alerts": {
                **self.alerts.counts(),
                "active": self.alerts.active(),
            },
        }

    def reload(self, slugs: list[str] | None = None) -> dict[str, Any]:
        """Hot-swap models: drop loaded state so the next request
        resolves the freshest registration.

        ``slugs`` limits the swap to those models; None reloads all.
        In-flight requests keep the complete model object they already
        resolved (old *or* new, never torn); the next resolve reloads
        from the registry, whose cache is evicted here.  Per-model
        drift state restarts from ``warming_up`` against the new
        ``training_stats``, so a post-refit ``/healthz`` verdict
        returns to ok instead of comparing fresh traffic with a stale
        baseline.
        """
        self.registry.evict_cache()
        with self._lock:
            if slugs is None:
                victims = list(self._loaded)
            else:
                victims = [s for s in slugs if s in self._loaded]
            dropped = [self._loaded.pop(s) for s in victims]
            for slug in victims:
                self._drift_flagged.pop(slug, None)
            n_loaded = len(self._loaded)
        for model in dropped:
            with model.lock:
                if model.batcher is not None:
                    model.batcher.close()
                    model.batcher = None
        for slug in victims:
            self.quality.drop_fields(f"serve.{slug}.")
        for registry in (self.metrics, obs_metrics.get_registry()):
            registry.counter("serve.reloads").inc()
            registry.gauge("serve.models_loaded").set(n_loaded)
        log.info(
            "hot-swapped models",
            extra=kv(models=",".join(victims) if victims else "(none)"),
        )
        return {"reloaded": victims, "models_loaded": n_loaded}

    def models(self) -> list[dict[str, Any]]:
        # lint: allow[DET002] age_s compares against stored epoch stamps
        now = time.time()
        return [
            {**record.to_dict(), "age_s": round(record.age_s(now), 3)}
            for record in self.registry.records()
        ]

    def close(self) -> None:
        """Stop the alert loop, then drain every model's micro-batcher."""
        if self._evaluator is not None:
            self._evaluator.stop()
            self._evaluator = None
        with self._lock:
            loaded = list(self._loaded.values())
        for model in loaded:
            with model.lock:
                if model.batcher is not None:
                    model.batcher.close()
                    model.batcher = None


_ENDPOINT_SLUGS = {
    "/assign": "assign",
    "/healthz": "healthz",
    "/models": "models",
    "/metrics": "metrics",
    "/reload": "reload",
}

# A well-formed trace id (16 lowercase hex chars, see obs.trace).  The
# router forwards its per-request id in X-Trace-Id so worker spans and
# error bodies join up with the front request; anything malformed is
# ignored and a fresh id minted.
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")


class _Handler(BaseHTTPRequestHandler):
    """Request routing for :class:`ServeServer`."""

    protocol_version = "HTTP/1.1"
    server: "ServeServer"

    # -- plumbing --------------------------------------------------------
    def setup(self) -> None:
        super().setup()
        # Per-connection socket timeout: a stalled client cannot pin a
        # handler thread (and block graceful shutdown) forever.
        self.connection.settimeout(self.server.service.config.request_timeout_s)

    def log_message(self, format: str, *args: Any) -> None:
        log.debug("http " + format % args)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", self._trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict | list,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_body(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers=headers,
        )

    def _error(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.server.service.record_error()
        self._send_json(
            status,
            {
                "error": {
                    "code": status,
                    "message": message,
                    "trace_id": self._trace_id,
                }
            },
            headers=headers,
        )

    def _endpoint(self) -> str:
        """Low-cardinality endpoint slug for per-endpoint instruments."""
        return _ENDPOINT_SLUGS.get(self.path.split("?", 1)[0], "other")

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle(self._route_post)

    def _handle(self, route) -> None:
        service = self.server.service
        service.record_request()
        incoming = self.headers.get("X-Trace-Id", "") if self.headers else ""
        self._trace_id = (
            incoming if _TRACE_ID_RE.match(incoming) else new_trace_id()
        )
        self._status = 500  # routes overwrite on every sent response
        start = time.perf_counter()
        try:
            with use_trace_id(self._trace_id):
                if should_sample(
                    self._trace_id, service.config.trace_sample_rate
                ):
                    obs_metrics.counter("serve.traces_sampled").inc()
                    service.metrics.counter("serve.traces_sampled").inc()
                    with span(
                        "serve.request",
                        method=self.command,
                        path=self.path.split("?", 1)[0],
                        trace_id=self._trace_id,
                    ) as sp:
                        route()
                        sp.set(status=self._status)
                else:
                    route()
        except BrokenPipeError:
            pass  # client went away; nothing to send
        except Exception as exc:  # defensive: never kill the thread
            log.error(
                "unhandled serving error",
                extra=kv(
                    path=self.path,
                    error=repr(exc),
                    trace_id=self._trace_id,
                ),
            )
            try:
                self._error(500, f"internal error: {exc}")
            # lint: allow[COR003] best-effort 500; the socket may be gone
            except Exception:
                pass
        finally:
            service.observe_http(
                self._endpoint(),
                self._status,
                time.perf_counter() - start,
            )

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0]
        service = self.server.service
        if path == "/healthz":
            self._send_json(200, service.health())
        elif path == "/models":
            self._send_json(200, {"models": service.models()})
        elif path == "/metrics":
            text = render_prometheus(
                service.metrics,
                window_s=service.config.metrics_window_s,
            )
            self._send_body(
                200,
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._error(404, f"unknown path {path!r}")

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0]
        service = self.server.service
        if path == "/reload":
            self._route_reload()
            return
        if path != "/assign":
            self._error(404, f"unknown path {path!r}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "missing request body")
            return
        if length > service.config.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{service.config.max_body_bytes}-byte limit",
            )
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            response = service.assign_payload(payload)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        except KeyError as exc:
            self._error(404, str(exc).strip("'\""))
            return
        except (queue.Full, BatcherClosedError) as exc:
            # Backpressure (a saturated micro-batch queue) and shutdown
            # are retryable conditions, not internal errors: answer a
            # structured 503 with Retry-After instead of a generic 500.
            service.metrics.counter("serve.queue_rejections").inc()
            obs_metrics.counter("serve.queue_rejections").inc()
            reason = (
                "assignment queue is saturated"
                if isinstance(exc, queue.Full)
                else "assignment engine is shutting down"
            )
            self._error(
                503,
                f"{reason}; retry shortly",
                headers={"Retry-After": "1"},
            )
            return
        response["trace_id"] = self._trace_id
        self._send_json(200, response)

    def _route_reload(self) -> None:
        """``POST /reload``: hot-swap models (empty body reloads all)."""
        service = self.server.service
        length = int(self.headers.get("Content-Length") or 0)
        if length > service.config.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the "
                f"{service.config.max_body_bytes}-byte limit",
            )
            return
        slugs = None
        if length > 0:
            try:
                payload = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                self._error(400, f"invalid JSON body: {exc}")
                return
            if not isinstance(payload, dict):
                self._error(400, "reload body must be a JSON object")
                return
            slugs = payload.get("slugs")
            if slugs is not None and (
                not isinstance(slugs, list)
                or not all(isinstance(s, str) for s in slugs)
            ):
                self._error(400, "'slugs' must be a list of model slugs")
                return
        response = service.reload(slugs)
        response["trace_id"] = self._trace_id
        self._send_json(200, response)


class ServeServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`AssignmentService`.

    ``daemon_threads`` stays False and ``block_on_close`` True so
    ``server_close`` joins in-flight handler threads -- shutdown drains
    accepted requests instead of abandoning them.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: AssignmentService):
        self.service = service
        super().__init__(address, _Handler)

    def server_close(self) -> None:
        super().server_close()  # joins handler threads first
        self.service.close()


def build_server(
    registry: ModelRegistry, config: ServeConfig | None = None
) -> ServeServer:
    """A ready-to-run server (``port=0`` binds an ephemeral port)."""
    config = config or ServeConfig()
    service = AssignmentService(registry, config)
    service.start_alerting()
    return ServeServer((config.host, config.port), service)


def serve_until_shutdown(server: ServeServer) -> int:
    """Run the accept loop until SIGTERM/SIGINT; drain, close, return 0.

    Signal handlers hand ``shutdown()`` to a helper thread (calling it
    from the loop's own thread deadlocks), then ``server_close`` joins
    in-flight handlers and stops the micro-batchers.
    """
    host, port = server.server_address[:2]
    log.info("serving", extra=kv(host=host, port=port))

    def _stop(signum, frame) -> None:
        log.info("shutdown requested", extra=kv(signal=signum))
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _stop)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.server_close()
    return 0
