"""One sharded assignment worker process.

``python -m repro.serve.worker`` runs a single-process
:class:`~repro.serve.server.ServeServer` that owns one shard of the
``(city, isp)`` model space (``--shard I --shards N``; see
:func:`repro.serve.registry.shard_for`).  The router
(:mod:`repro.serve.router`) spawns N of these behind one front
endpoint and parses the ``serving on http://host:port`` line each
worker prints once its ephemeral port is bound.

Workers load models through the registry's mmap'd ``.arrays`` sidecar
by default (``--no-mmap`` opts out), so N processes serving the same
model share one page-cache copy of the big per-row arrays instead of
each parsing the JSON object.  ``--quantized`` serves through the
registered byte-identity-proven lookup tables where available.

A worker is a complete server: it keeps its own micro-batchers, drift
monitor, and always-on metrics registry, and shuts down gracefully on
SIGTERM (the router stops workers exactly that way).
"""

from __future__ import annotations

import argparse

from repro.serve.registry import ModelRegistry
from repro.serve.server import ServeConfig, build_server, serve_until_shutdown

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="one sharded tier-assignment worker process",
    )
    parser.add_argument("--registry", required=True, help="model store root")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--shard", type=int, default=0, help="this worker's shard index"
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="total worker count"
    )
    parser.add_argument("--default-city", default="")
    parser.add_argument("--trace-sample", type=float, default=1.0)
    parser.add_argument(
        "--alert-interval",
        type=float,
        default=0.0,
        help="alert loop period in seconds; 0 disables (router default)",
    )
    parser.add_argument(
        "--alert-log", default=None, help="JSONL alert transition log"
    )
    parser.add_argument(
        "--quantized",
        action="store_true",
        help="serve via registered byte-identity-proven lookup tables",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load models from JSON objects instead of the mmap sidecar",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.shard < args.shards:
        parser.error(
            f"--shard {args.shard} outside 0..{args.shards - 1}"
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        default_city=args.default_city,
        trace_sample_rate=args.trace_sample,
        alert_interval_s=args.alert_interval,
        alert_log=args.alert_log,
        shard=(args.shard, args.shards),
        mmap_models=not args.no_mmap,
        quantized=args.quantized,
    )
    server = build_server(ModelRegistry(args.registry), config)
    host, port = server.server_address[:2]
    # The router's supervisor parses this exact line for the bound port.
    print(f"serving on http://{host}:{port}", flush=True)
    return serve_until_shutdown(server)


if __name__ == "__main__":
    raise SystemExit(main())
