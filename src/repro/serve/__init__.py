"""repro.serve -- BST model registry and online tier assignment.

Fitting a BST model is the pipeline's dominant cost; this subsystem
makes a fitted model reusable and servable:

- :mod:`repro.serve.registry` -- content-addressed, versioned store of
  fitted models keyed by ``(city, isp, config fingerprint)``.
- :mod:`repro.serve.engine` -- vectorised tier assignment against a
  frozen fit (byte-identical to fit-time labels on the training
  sample) plus a bounded micro-batching queue for streaming input.
- :mod:`repro.serve.server` / :mod:`repro.serve.client` -- a stdlib
  HTTP service (``/assign``, ``/models``, ``/healthz``) and its
  client, with per-request observability, drift checks, and graceful
  shutdown.
- :mod:`repro.serve.router` / :mod:`repro.serve.worker` -- the
  scale-out layer: N worker subprocesses sharded by ``(city, isp)``
  behind one front router (``repro serve --workers N``).

See docs/SERVING.md for the full tour.
"""

from repro.serve.engine import (
    AssignmentBatch,
    MicroBatcher,
    QuantizedLookup,
    TierAssigner,
)
from repro.serve.registry import ModelKey, ModelRecord, ModelRegistry

__all__ = [
    "AssignmentBatch",
    "MicroBatcher",
    "ModelKey",
    "ModelRecord",
    "ModelRegistry",
    "QuantizedLookup",
    "TierAssigner",
]
