"""Command-line interface.

Subcommands cover the full reproduction workflow:

- ``repro generate``: simulate a vendor dataset for a city and write CSV.
- ``repro join-ndt``: associate NDT upload records with downloads.
- ``repro contextualize``: run BST over a CSV and write the augmented CSV.
- ``repro evaluate``: score BST against an MBA panel's ground truth.
- ``repro experiment``: run one registered paper artifact and print it.
- ``repro list-experiments``: show the registry.
- ``repro audit``: metadata audit + Section 8 recommendations for a CSV.
- ``repro challenge``: challenge-process triage for a contextualised CSV.

Every command is deterministic given ``--seed``, and every command
accepts the shared observability flags (``--log-level``, ``--log-format``,
``--trace-out FILE.jsonl``, ``--metrics``, ``--profile``; see
docs/OBSERVABILITY.md) plus ``--jobs N`` to fan independent BST fits out
over a process pool (results identical to serial; see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.assignment import accuracy_report
from repro.core.bst import BSTModel
from repro.experiments import REGISTRY, Scale, run_experiment
from repro.frame import read_csv, write_csv
from repro.market.isps import CITY_IDS, city_catalog, state_catalog
from repro.pipeline.challenge import CATEGORIES, classify_tests
from repro.pipeline.contextualize import contextualize
from repro.pipeline.metadata import audit_metadata, recommend
from repro.pipeline.ndt_join import join_ndt_tests
from repro.pipeline.report import format_table
from repro.vendors.mba import MBASimulator
from repro.vendors.mlab import MLabSimulator
from repro.vendors.ookla import OoklaSimulator

__all__ = ["main", "build_parser"]


def _obs_parent() -> argparse.ArgumentParser:
    """Parent parser carrying the shared observability flags.

    Every subcommand inherits these, so ``repro <cmd> --trace-out t.jsonl
    --metrics`` works uniformly across the CLI.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured logging at this threshold (stderr)",
    )
    group.add_argument(
        "--log-format", choices=("human", "json"), default="human",
        help="log line format (with --log-level)",
    )
    group.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="record pipeline spans and write them as JSON lines",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="print a metrics summary (counters/gauges/histograms)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top functions",
    )
    perf = parent.add_argument_group("performance")
    perf.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent BST fits "
             "(1 = serial, 0 = all CPUs); results are identical to serial",
    )
    return parent


def _add_seed(parser: argparse.ArgumentParser, default: int = 0) -> None:
    """Shared ``--seed`` wiring (every command is deterministic per seed)."""
    parser.add_argument("--seed", type=int, default=default)


def _add_city(
    parser: argparse.ArgumentParser,
    required: bool = False,
    default: str | None = "A",
    flag: str = "--city",
    help: str | None = None,
) -> None:
    """Shared city/state argument wiring."""
    kwargs: dict = {"choices": CITY_IDS}
    if required:
        kwargs["required"] = True
    else:
        kwargs["default"] = default
    if help:
        kwargs["help"] = help
    parser.add_argument(flag, **kwargs)


def _add_scale(
    parser: argparse.ArgumentParser, default: Scale | None = None
) -> None:
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=(default or Scale.MEDIUM).value,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Importance of Contextualization of "
            "Crowdsourced Active Speed Test Measurements' (IMC 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = [_obs_parent()]

    def subparser(name: str, help: str) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=help, parents=obs)

    generate = subparser(
        "generate", "simulate a vendor dataset and write CSV"
    )
    generate.add_argument(
        "--vendor", choices=("ookla", "mlab", "mba"), required=True
    )
    _add_city(generate, help="city (or state, for MBA)")
    generate.add_argument("--n", type=int, default=20_000,
                          help="tests / sessions / rows to generate")
    _add_seed(generate)
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.set_defaults(func=_cmd_generate)

    join = subparser(
        "join-ndt", "pair NDT upload records with downloads (120 s window)"
    )
    join.add_argument("--input", required=True, help="raw NDT CSV")
    join.add_argument("--out", required=True, help="joined CSV path")
    join.add_argument("--window", type=float, default=120.0)
    join.set_defaults(func=_cmd_join)

    ctx = subparser(
        "contextualize",
        "run BST over a measurement CSV and write the augmented CSV",
    )
    ctx.add_argument("--input", required=True)
    _add_city(ctx, required=True)
    ctx.add_argument("--out", required=True)
    ctx.set_defaults(func=_cmd_contextualize)

    evaluate = subparser(
        "evaluate", "score BST against an MBA panel's ground truth"
    )
    _add_city(evaluate, flag="--state")
    evaluate.add_argument("--n", type=int, default=12_000)
    _add_seed(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    experiment = subparser(
        "experiment", "run one registered paper artifact"
    )
    experiment.add_argument("experiment_id", choices=sorted(REGISTRY))
    _add_scale(experiment)
    _add_seed(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    list_cmd = subparser(
        "list-experiments", "list the registered paper artifacts"
    )
    list_cmd.set_defaults(func=_cmd_list)

    report_all = subparser(
        "report-all", "run experiments and export reports to a directory"
    )
    report_all.add_argument("--out-dir", required=True)
    _add_scale(report_all, default=Scale.SMALL)
    _add_seed(report_all)
    report_all.add_argument(
        "--only", nargs="*", default=None,
        help="experiment ids to run (default: all)",
    )
    report_all.set_defaults(func=_cmd_report_all)

    audit = subparser(
        "audit", "metadata audit + Section 8 recommendations for a CSV"
    )
    audit.add_argument("--input", required=True)
    audit.set_defaults(func=_cmd_audit)

    challenge = subparser(
        "challenge", "challenge-process triage over a contextualised CSV"
    )
    challenge.add_argument("--input", required=True)
    challenge.add_argument("--ratio", type=float, default=0.5,
                           help="under-performance ratio threshold")
    challenge.set_defaults(func=_cmd_challenge)

    describe = subparser(
        "describe", "print a city's plan menu and the BST pipeline over it"
    )
    _add_city(describe)
    describe.set_defaults(func=_cmd_describe)

    dossier = subparser(
        "dossier", "generate and render the full city dossier"
    )
    _add_city(dossier)
    dossier.add_argument("--n", type=int, default=20_000)
    _add_seed(dossier)
    dossier.set_defaults(func=_cmd_dossier)

    return parser


# ---------------------------------------------------------------------------
def _cmd_generate(args) -> int:
    if args.vendor == "ookla":
        table = OoklaSimulator(args.city, seed=args.seed).generate(args.n)
    elif args.vendor == "mlab":
        table = MLabSimulator(args.city, seed=args.seed).generate(args.n)
    else:
        table = MBASimulator(args.city, seed=args.seed).generate(args.n)
    write_csv(table, args.out)
    print(f"wrote {len(table)} {args.vendor} rows to {args.out}")
    return 0


def _cmd_join(args) -> int:
    raw = read_csv(args.input)
    joined = join_ndt_tests(raw, window_s=args.window)
    write_csv(joined, args.out)
    print(
        f"joined {len(joined)} download/upload pairs "
        f"(from {len(raw)} records) to {args.out}"
    )
    return 0


def _cmd_contextualize(args) -> int:
    table = read_csv(args.input)
    ctx = contextualize(table, city_catalog(args.city), jobs=args.jobs)
    write_csv(ctx.table, args.out)
    rows = []
    for label in ctx.group_labels:
        group_rows = ctx.rows_for_group(label)
        median = (
            float(np.median(group_rows["normalized_download"]))
            if len(group_rows)
            else float("nan")
        )
        rows.append([label, len(group_rows), round(median, 3)])
    print(format_table(rows, ["group", "tests", "median dl/plan"]))
    print(f"wrote {len(ctx)} contextualised rows to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    mba = MBASimulator(args.state, seed=args.seed).generate(args.n)
    catalog = state_catalog(args.state)
    result = BSTModel(catalog).fit(
        mba["download_mbps"], mba["upload_mbps"], jobs=args.jobs
    )
    report = accuracy_report(result, mba["tier"])
    print(
        f"State-{args.state} ({catalog.isp_name}), "
        f"{report.n_measurements} measurements"
    )
    print(
        f"upload-group accuracy: {report.upload_group_accuracy:.2%}  "
        f"(paper: >96%)"
    )
    print(f"plan-tier accuracy:    {report.tier_accuracy:.2%}")
    rows = [
        [label, f"{acc:.2%}"]
        for label, acc in report.per_group_tier_accuracy.items()
    ]
    print(format_table(rows, ["group", "tier accuracy"]))
    return 0


def _cmd_experiment(args) -> int:
    result = run_experiment(
        args.experiment_id,
        scale=Scale(args.scale),
        seed=args.seed,
        jobs=args.jobs,
    )
    print(result.render())
    return 0


def _cmd_list(args) -> int:
    rows = [[eid, REGISTRY[eid].__doc__.strip().splitlines()[0]]
            for eid in sorted(REGISTRY)]
    print(format_table(rows, ["experiment", "description"]))
    return 0


def _cmd_report_all(args) -> int:
    from repro.experiments.export import export_all

    results = export_all(
        args.out_dir,
        experiment_ids=args.only,
        scale=Scale(args.scale),
        seed=args.seed,
        jobs=args.jobs,
    )
    print(
        f"exported {len(results)} experiment reports to {args.out_dir} "
        "(summary.txt, metrics.csv, one .txt per experiment)"
    )
    return 0


def _cmd_audit(args) -> int:
    table = read_csv(args.input)
    audit = audit_metadata(table)
    rows = [
        [
            fp.field.name,
            "yes" if fp.present else "no",
            f"{fp.coverage:.0%}",
        ]
        for fp in audit.fields
    ]
    print(format_table(rows, ["context field", "present", "coverage"]))
    print(f"interpretability score: {audit.interpretability:.2f} / 1.00")
    recommendations = recommend(audit)
    if recommendations:
        print("\nrecommendations (Section 8):")
        for i, text in enumerate(recommendations, 1):
            print(f"  {i}. {text}")
    else:
        print("\nno gaps: every recommended context field is covered.")
    return 0


def _cmd_challenge(args) -> int:
    from repro.pipeline.challenge import ChallengeConfig

    table = read_csv(args.input)
    summary = classify_tests(
        table, ChallengeConfig(underperformance_ratio=args.ratio)
    )
    rows = [
        [category, summary.counts.get(category, 0),
         f"{summary.share(category):.1%}"]
        for category in CATEGORIES
    ]
    print(format_table(rows, ["category", "tests", "share"]))
    print(
        f"\n{summary.counts.get('challenge-worthy', 0)} tests are "
        "evidence-grade for a coverage challenge."
    )
    return 0


def _cmd_describe(args) -> int:
    print(BSTModel(city_catalog(args.city)).describe())
    return 0


def _cmd_dossier(args) -> int:
    from repro.pipeline.dossier import city_dossier

    catalog = city_catalog(args.city)
    tests = OoklaSimulator(args.city, seed=args.seed).generate(args.n)
    ctx = contextualize(tests, catalog, jobs=args.jobs)
    print(city_dossier(ctx, city_label=f"City-{args.city}"))
    return 0


def _run_with_obs(args) -> int:
    """Dispatch a parsed command inside the requested obs session.

    With no obs flags this adds nothing: no collector, no registry, no
    handlers -- the command runs exactly as before.  Otherwise the
    requested sinks are installed around the command and their outputs
    (metrics summary, trace file, profile) emitted after it returns.
    """
    from repro import obs
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    if args.log_level:
        obs.configure_logging(level=args.log_level, fmt=args.log_format)

    collector = obs.SpanCollector() if args.trace_out else None
    registry = obs.MetricsRegistry() if args.metrics else None
    report = None

    if collector is not None:
        # Fail fast on an unwritable trace path rather than discovering
        # it only after the (possibly long) command has finished.
        try:
            with open(args.trace_out, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write --trace-out: {exc}", file=sys.stderr)
            return 2

    # NB: "is not None" -- the collector/registry are sized containers,
    # so an empty one is falsy.
    prev_collector = (
        obs_trace.set_collector(collector) if collector is not None else None
    )
    prev_registry = (
        obs_metrics.set_registry(registry) if registry is not None else None
    )
    try:
        if args.profile:
            from repro.obs.profile import profile_block

            with profile_block() as report:
                code = args.func(args)
        else:
            code = args.func(args)
    finally:
        if collector is not None:
            obs_trace.set_collector(prev_collector)
        if registry is not None:
            obs_metrics.set_registry(prev_registry)

    if registry is not None:
        print()
        print(registry.render())
    if collector is not None:
        n_spans = collector.export_jsonl(args.trace_out)
        print(f"wrote {n_spans} spans to {args.trace_out}")
    if report is not None:
        print()
        print("-- profile (top 25 by cumulative time) --")
        print(report.render())
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _run_with_obs(args)


if __name__ == "__main__":
    sys.exit(main())
