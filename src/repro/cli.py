"""Command-line interface.

Subcommands cover the full reproduction workflow:

- ``repro generate``: simulate a vendor dataset for a city and write CSV.
- ``repro join-ndt``: associate NDT upload records with downloads.
- ``repro contextualize``: run BST over a CSV and write the augmented CSV.
- ``repro evaluate``: score BST against an MBA panel's ground truth.
- ``repro experiment``: run one registered paper artifact and print it.
- ``repro list-experiments``: show the registry.
- ``repro audit``: metadata audit + Section 8 recommendations for a CSV.
- ``repro challenge``: challenge-process triage for a contextualised CSV.
- ``repro serve``: run the tier-assignment HTTP service over a model
  registry (fitting and registering the city's model on first use).
- ``repro assign``: one-shot batch assignment from a registry (fit and
  register on miss; warm runs skip the fit entirely).
- ``repro obs``: inspect the run ledger (``runs`` / ``show`` / ``diff`` /
  ``check``) or watch a live server (``watch`` polls ``/metrics`` +
  ``/healthz`` and renders a refreshing telemetry table).
- ``repro lint``: static analysis of the source tree against the repo's
  own invariants -- determinism, correctness, observability naming, lock
  discipline (see docs/ANALYSIS.md).

Every command is deterministic given ``--seed``, and every command
accepts the shared observability flags (``--log-level``, ``--log-format``,
``--trace-out FILE.jsonl``, ``--metrics``, ``--profile``; see
docs/OBSERVABILITY.md) plus ``--jobs N`` to fan independent BST fits out
over a process pool (results identical to serial; see
docs/PERFORMANCE.md).

Every run additionally appends a provenance manifest (run id, config
hash, seed, git SHA, wall time, peak RSS, span digest, metrics and
quality snapshots) to the JSONL run ledger -- ``results/runs.jsonl`` by
default, another path via ``--ledger``, off via ``--no-ledger`` or
``REPRO_LEDGER=0``.  With the ledger disabled the CLI installs no sinks
and its output is byte-identical to an unledgered build.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.assignment import accuracy_report
from repro.core.bst import BSTModel
from repro.experiments import REGISTRY, Scale, run_experiment
from repro.frame import read_csv, write_csv
from repro.market.isps import CITY_IDS, city_catalog, state_catalog
from repro.pipeline.challenge import CATEGORIES, classify_tests
from repro.pipeline.contextualize import contextualize
from repro.pipeline.metadata import audit_metadata, recommend
from repro.pipeline.ndt_join import join_ndt_tests
from repro.pipeline.report import format_table
from repro.vendors.mba import MBASimulator
from repro.vendors.mlab import MLabSimulator
from repro.vendors.ookla import OoklaSimulator

__all__ = ["main", "build_parser"]


def _obs_parent() -> argparse.ArgumentParser:
    """Parent parser carrying the shared observability flags.

    Every subcommand inherits these, so ``repro <cmd> --trace-out t.jsonl
    --metrics`` works uniformly across the CLI.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured logging at this threshold (stderr)",
    )
    group.add_argument(
        "--log-format", choices=("human", "json"), default="human",
        help="log line format (with --log-level)",
    )
    group.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="record pipeline spans and write them as JSON lines",
    )
    group.add_argument(
        "--metrics", action="store_true",
        help="print a metrics summary (counters/gauges/histograms)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top functions",
    )
    perf = parent.add_argument_group("performance")
    perf.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent BST fits "
             "(1 = serial, 0 = all CPUs); results are identical to serial",
    )
    ledger = parent.add_argument_group("run ledger")
    ledger.add_argument(
        "--ledger", metavar="FILE.jsonl", default=None,
        help="run-ledger path (default results/runs.jsonl, or the "
             "REPRO_LEDGER env var; every run appends a provenance "
             "manifest)",
    )
    ledger.add_argument(
        "--no-ledger", action="store_true",
        help="do not record this run in the run ledger",
    )
    return parent


def _add_seed(parser: argparse.ArgumentParser, default: int = 0) -> None:
    """Shared ``--seed`` wiring (every command is deterministic per seed)."""
    parser.add_argument("--seed", type=int, default=default)


def _add_city(
    parser: argparse.ArgumentParser,
    required: bool = False,
    default: str | None = "A",
    flag: str = "--city",
    help: str | None = None,
) -> None:
    """Shared city/state argument wiring."""
    kwargs: dict = {"choices": CITY_IDS}
    if required:
        kwargs["required"] = True
    else:
        kwargs["default"] = default
    if help:
        kwargs["help"] = help
    parser.add_argument(flag, **kwargs)


def _add_scale(
    parser: argparse.ArgumentParser, default: Scale | None = None
) -> None:
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=(default or Scale.MEDIUM).value,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'The Importance of Contextualization of "
            "Crowdsourced Active Speed Test Measurements' (IMC 2022)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = [_obs_parent()]

    def subparser(name: str, help: str) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=help, parents=obs)

    generate = subparser(
        "generate", "simulate a vendor dataset and write CSV"
    )
    generate.add_argument(
        "--vendor", choices=("ookla", "mlab", "mba"), required=True
    )
    _add_city(generate, help="city (or state, for MBA)")
    generate.add_argument("--n", type=int, default=20_000,
                          help="tests / sessions / rows to generate")
    _add_seed(generate)
    generate.add_argument("--out", required=True, help="output CSV path")
    generate.set_defaults(func=_cmd_generate)

    join = subparser(
        "join-ndt", "pair NDT upload records with downloads (120 s window)"
    )
    join.add_argument("--input", required=True, help="raw NDT CSV")
    join.add_argument("--out", required=True, help="joined CSV path")
    join.add_argument("--window", type=float, default=120.0)
    join.set_defaults(func=_cmd_join)

    ctx = subparser(
        "contextualize",
        "run BST over a measurement CSV and write the augmented CSV",
    )
    ctx.add_argument("--input", required=True)
    _add_city(ctx, required=True)
    ctx.add_argument("--out", required=True)
    ctx.set_defaults(func=_cmd_contextualize)

    evaluate = subparser(
        "evaluate", "score BST against an MBA panel's ground truth"
    )
    _add_city(evaluate, flag="--state")
    evaluate.add_argument("--n", type=int, default=12_000)
    _add_seed(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    experiment = subparser(
        "experiment", "run one registered paper artifact"
    )
    experiment.add_argument("experiment_id", choices=sorted(REGISTRY))
    _add_scale(experiment)
    _add_seed(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    list_cmd = subparser(
        "list-experiments", "list the registered paper artifacts"
    )
    list_cmd.set_defaults(func=_cmd_list)

    report_all = subparser(
        "report-all", "run experiments and export reports to a directory"
    )
    report_all.add_argument("--out-dir", required=True)
    _add_scale(report_all, default=Scale.SMALL)
    _add_seed(report_all)
    report_all.add_argument(
        "--only", nargs="*", default=None,
        help="experiment ids to run (default: all)",
    )
    report_all.set_defaults(func=_cmd_report_all)

    audit = subparser(
        "audit", "metadata audit + Section 8 recommendations for a CSV"
    )
    audit.add_argument("--input", required=True)
    audit.set_defaults(func=_cmd_audit)

    challenge = subparser(
        "challenge", "challenge-process triage over a contextualised CSV"
    )
    challenge.add_argument("--input", required=True)
    challenge.add_argument("--ratio", type=float, default=0.5,
                           help="under-performance ratio threshold")
    challenge.set_defaults(func=_cmd_challenge)

    serve = subparser(
        "serve", "run the tier-assignment HTTP service (see docs/SERVING.md)"
    )
    _add_city(serve)
    serve.add_argument(
        "--registry", default="models", metavar="DIR",
        help="model-registry directory (created if missing)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="listen port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--n", type=int, default=20_000,
        help="training sample size when the city's model must be fitted",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes; >1 runs the sharded router in front of "
             "N repro.serve.worker subprocesses (see docs/SERVING.md)",
    )
    serve.add_argument(
        "--quantized", action="store_true",
        help="serve via registered byte-identity-proven lookup tables "
             "where available",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="fraction of requests that get a serve.request span "
             "(trace ids are always issued)",
    )
    serve.add_argument(
        "--alert-rules", default=None, metavar="FILE.json",
        help="alert rules (see docs/ALERTING.md; default: built-in "
             "serve rules)",
    )
    serve.add_argument(
        "--alert-log", default="results/alerts.jsonl",
        metavar="FILE.jsonl",
        help="append alert transitions as JSON lines ('off' disables)",
    )
    serve.add_argument(
        "--alert-interval", type=float, default=1.0, metavar="SECONDS",
        help="alert evaluation period (<= 0 disables the evaluator)",
    )
    serve.add_argument(
        "--refit", action="store_true",
        help="attach the online lifecycle: tap served traffic into a "
             "drift monitor and hot-swap refitted models via /reload "
             "(see docs/STREAMING.md)",
    )
    serve.add_argument(
        "--refit-interval", type=float, default=5.0, metavar="SECONDS",
        help="drift-poll period of the refit scheduler (with --refit)",
    )
    serve.add_argument(
        "--refit-window", type=float, default=60.0, metavar="SECONDS",
        help="sliding stats window of the drift monitor (with --refit)",
    )
    _add_seed(serve)
    serve.set_defaults(func=_cmd_serve)

    stream_cmd = subparser(
        "stream",
        "measurement firehose + online model lifecycle "
        "(see docs/STREAMING.md)",
    )
    stream_sub = stream_cmd.add_subparsers(
        dest="stream_command", required=True
    )
    stream_run = stream_sub.add_parser(
        "run", parents=obs,
        help="drive a simulated firehose through the drift monitor and "
             "refit scheduler under the injected clock",
    )
    _add_city(stream_run, help="city (or state, for MBA)")
    stream_run.add_argument(
        "--vendors", default="ookla", metavar="V1[,V2...]",
        help="comma-separated vendor streams to mux (ookla, mlab, mba)",
    )
    stream_run.add_argument(
        "--registry", default="models", metavar="DIR",
        help="model registry the warmup fit registers into and refits "
             "hot-swap through (created if missing)",
    )
    stream_run.add_argument(
        "--rate", type=float, default=2000.0, metavar="EVENTS_PER_S",
        help="total mean arrival rate, split evenly across vendors",
    )
    stream_run.add_argument(
        "--batch", type=int, default=256, help="events per micro-batch"
    )
    stream_run.add_argument(
        "--pool", type=int, default=4096,
        help="simulator-generated base pool size per vendor stream",
    )
    stream_run.add_argument(
        "--duration", type=float, default=120.0, metavar="SECONDS",
        help="stream-time duration to simulate",
    )
    stream_run.add_argument(
        "--drift-at", type=float, default=None, metavar="SECONDS",
        help="inject a drift segment starting at this stream time",
    )
    stream_run.add_argument(
        "--drift-scale", type=float, default=0.5, metavar="FACTOR",
        help="download/upload scale inside the segment (with --drift-at)",
    )
    stream_run.add_argument(
        "--tier-shift", type=float, default=0.0, metavar="FRACTION",
        help="upper-tier share dropped inside the segment "
             "(with --drift-at)",
    )
    stream_run.add_argument(
        "--window", type=float, default=60.0, metavar="SECONDS",
        help="sliding stats window of the drift monitor",
    )
    stream_run.add_argument(
        "--min-hold", type=float, default=5.0, metavar="SECONDS",
        help="a drift breach must persist this long before a refit",
    )
    stream_run.add_argument(
        "--cooldown", type=float, default=60.0, metavar="SECONDS",
        help="per-model immunity after a refit",
    )
    stream_run.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="stream-time period between scheduler/alert polls",
    )
    _add_seed(stream_run)
    stream_run.set_defaults(func=_cmd_stream_run)

    assign = subparser(
        "assign",
        "one-shot batch tier assignment from a model registry "
        "(fits and registers on miss)",
    )
    assign.add_argument("--input", required=True, help="measurement CSV")
    _add_city(assign, required=True)
    assign.add_argument("--out", required=True, help="augmented CSV path")
    assign.add_argument(
        "--registry", default="models", metavar="DIR",
        help="model-registry directory (created if missing)",
    )
    assign.set_defaults(func=_cmd_assign)

    describe = subparser(
        "describe", "print a city's plan menu and the BST pipeline over it"
    )
    _add_city(describe)
    describe.set_defaults(func=_cmd_describe)

    dossier = subparser(
        "dossier", "generate and render the full city dossier"
    )
    _add_city(dossier)
    dossier.add_argument("--n", type=int, default=20_000)
    _add_seed(dossier)
    dossier.set_defaults(func=_cmd_dossier)

    lint = subparser(
        "lint",
        "static analysis: determinism, correctness, observability "
        "naming, lock discipline (see docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: the whole --root)",
    )
    lint.add_argument(
        "--root", default=None, metavar="DIR",
        help="scan root findings are reported relative to "
             "(default: ./src when present, else .)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the CI artifact schema)",
    )
    lint.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE.json",
        help="suppression file: known findings pass, new ones fail "
             "(an absent file is an empty baseline)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    obs_cmd = subparser("obs", "inspect the run ledger")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_runs = obs_sub.add_parser(
        "runs", parents=obs, help="list recorded runs"
    )
    obs_runs.add_argument(
        "--kind", choices=("cli", "experiment", "bench", "refit"),
        default=None,
    )
    obs_runs.add_argument(
        "--name", default=None,
        help="filter by run name (e.g. experiment.tab2)",
    )
    obs_runs.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="show only the N most recent matching runs",
    )
    obs_runs.set_defaults(func=_cmd_obs_runs, ledger_exempt=True)

    obs_show = obs_sub.add_parser(
        "show", parents=obs, help="show one run's full manifest"
    )
    obs_show.add_argument(
        "run_id", help="run id or unique prefix ('latest' for the last run)"
    )
    obs_show.set_defaults(func=_cmd_obs_show, ledger_exempt=True)

    obs_diff = obs_sub.add_parser(
        "diff", parents=obs, help="compare two recorded runs"
    )
    obs_diff.add_argument("run_a")
    obs_diff.add_argument("run_b")
    obs_diff.set_defaults(func=_cmd_obs_diff, ledger_exempt=True)

    obs_check = obs_sub.add_parser(
        "check",
        parents=obs,
        help="compare the latest run against a rolling baseline; "
             "non-zero exit on regression",
    )
    obs_check.add_argument(
        "--run", default=None,
        help="run id to check (default: the most recent run)",
    )
    obs_check.add_argument(
        "--baseline-n", type=int, default=5, metavar="K",
        help="rolling-baseline window: mean of the K previous runs "
             "with the same kind and name",
    )
    obs_check.add_argument(
        "--max-slowdown", type=float, default=50.0, metavar="PCT",
        help="fail when wall time exceeds the baseline mean by more "
             "than PCT percent",
    )
    obs_check.add_argument(
        "--max-metric-delta", type=float, default=10.0, metavar="PCT",
        help="fail when a headline result drifts from the baseline "
             "mean by more than PCT percent",
    )
    obs_check.add_argument(
        "--max-quality-delta", type=float, default=0.05, metavar="ABS",
        help="fail when a quality rate (NaN/negative/outlier/unmapped) "
             "moves by more than ABS from the baseline mean",
    )
    obs_check.set_defaults(func=_cmd_obs_check, ledger_exempt=True)

    obs_watch = obs_sub.add_parser(
        "watch",
        parents=obs,
        help="poll a live server's /metrics + /healthz and render a "
             "refreshing telemetry table",
    )
    obs_watch.add_argument(
        "--url", required=True, metavar="http://HOST:PORT",
        help="base URL of a running `repro serve` instance",
    )
    obs_watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls",
    )
    obs_watch.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="stop after N snapshots (0 = run until interrupted)",
    )
    obs_watch.add_argument(
        "--no-clear", action="store_true",
        help="append snapshots instead of clearing the screen",
    )
    obs_watch.set_defaults(func=_cmd_obs_watch, ledger_exempt=True)

    return parser


# ---------------------------------------------------------------------------
def _cmd_generate(args) -> int:
    if args.vendor == "ookla":
        table = OoklaSimulator(args.city, seed=args.seed).generate(args.n)
    elif args.vendor == "mlab":
        table = MLabSimulator(args.city, seed=args.seed).generate(args.n)
    else:
        table = MBASimulator(args.city, seed=args.seed).generate(args.n)
    write_csv(table, args.out)
    print(f"wrote {len(table)} {args.vendor} rows to {args.out}")
    return 0


def _cmd_join(args) -> int:
    raw = read_csv(args.input)
    joined = join_ndt_tests(raw, window_s=args.window)
    write_csv(joined, args.out)
    print(
        f"joined {len(joined)} download/upload pairs "
        f"(from {len(raw)} records) to {args.out}"
    )
    return 0


def _cmd_contextualize(args) -> int:
    table = read_csv(args.input)
    ctx = contextualize(table, city_catalog(args.city), jobs=args.jobs)
    write_csv(ctx.table, args.out)
    rows = []
    for label in ctx.group_labels:
        group_rows = ctx.rows_for_group(label)
        median = (
            float(np.median(group_rows["normalized_download"]))
            if len(group_rows)
            else float("nan")
        )
        rows.append([label, len(group_rows), round(median, 3)])
    print(format_table(rows, ["group", "tests", "median dl/plan"]))
    print(f"wrote {len(ctx)} contextualised rows to {args.out}")
    return 0


def _cmd_evaluate(args) -> int:
    mba = MBASimulator(args.state, seed=args.seed).generate(args.n)
    catalog = state_catalog(args.state)
    result = BSTModel(catalog).fit(
        mba["download_mbps"], mba["upload_mbps"], jobs=args.jobs
    )
    report = accuracy_report(result, mba["tier"])
    args.run_results = {
        "upload_group_accuracy": report.upload_group_accuracy,
        "tier_accuracy": report.tier_accuracy,
    }
    print(
        f"State-{args.state} ({catalog.isp_name}), "
        f"{report.n_measurements} measurements"
    )
    print(
        f"upload-group accuracy: {report.upload_group_accuracy:.2%}  "
        f"(paper: >96%)"
    )
    print(f"plan-tier accuracy:    {report.tier_accuracy:.2%}")
    rows = [
        [label, f"{acc:.2%}"]
        for label, acc in report.per_group_tier_accuracy.items()
    ]
    print(format_table(rows, ["group", "tier accuracy"]))
    return 0


def _cmd_experiment(args) -> int:
    result = run_experiment(
        args.experiment_id,
        scale=Scale(args.scale),
        seed=args.seed,
        jobs=args.jobs,
    )
    # Headline numbers flow into the run manifest (repro obs check
    # compares them across runs).
    args.run_results = dict(result.metrics)
    print(result.render())
    return 0


def _cmd_list(args) -> int:
    rows = [[eid, REGISTRY[eid].__doc__.strip().splitlines()[0]]
            for eid in sorted(REGISTRY)]
    print(format_table(rows, ["experiment", "description"]))
    return 0


def _cmd_report_all(args) -> int:
    from repro.experiments.export import export_all

    results = export_all(
        args.out_dir,
        experiment_ids=args.only,
        scale=Scale(args.scale),
        seed=args.seed,
        jobs=args.jobs,
        ledger=getattr(args, "resolved_ledger", None),
    )
    print(
        f"exported {len(results)} experiment reports to {args.out_dir} "
        "(summary.txt, metrics.csv, one .txt per experiment)"
    )
    return 0


def _cmd_audit(args) -> int:
    table = read_csv(args.input)
    audit = audit_metadata(table)
    rows = [
        [
            fp.field.name,
            "yes" if fp.present else "no",
            f"{fp.coverage:.0%}",
        ]
        for fp in audit.fields
    ]
    print(format_table(rows, ["context field", "present", "coverage"]))
    print(f"interpretability score: {audit.interpretability:.2f} / 1.00")
    recommendations = recommend(audit)
    if recommendations:
        print("\nrecommendations (Section 8):")
        for i, text in enumerate(recommendations, 1):
            print(f"  {i}. {text}")
    else:
        print("\nno gaps: every recommended context field is covered.")
    return 0


def _cmd_challenge(args) -> int:
    from repro.pipeline.challenge import ChallengeConfig

    table = read_csv(args.input)
    summary = classify_tests(
        table, ChallengeConfig(underperformance_ratio=args.ratio)
    )
    rows = [
        [category, summary.counts.get(category, 0),
         f"{summary.share(category):.1%}"]
        for category in CATEGORIES
    ]
    print(format_table(rows, ["category", "tests", "share"]))
    print(
        f"\n{summary.counts.get('challenge-worthy', 0)} tests are "
        "evidence-grade for a coverage challenge."
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import (
        ServeConfig,
        build_server,
        serve_until_shutdown,
    )

    registry = ModelRegistry(args.registry)
    catalog = city_catalog(args.city)
    key = registry.key_for(args.city, catalog)
    if registry.lookup(key) is None:
        print(
            f"no model for City-{args.city} in {args.registry}; "
            f"fitting on {args.n} simulated tests...",
            flush=True,
        )
        tests = OoklaSimulator(args.city, seed=args.seed).generate(args.n)
        contextualize(
            tests, catalog, registry=registry, city=args.city, jobs=args.jobs
        )
    alert_log = args.alert_log if args.alert_log != "off" else None
    if args.workers > 1:
        from repro.serve.router import RouterConfig, build_router

        server = build_router(
            args.registry,
            RouterConfig(
                host=args.host,
                port=args.port,
                n_workers=args.workers,
                default_city=args.city,
                worker_quantized=args.quantized,
                worker_trace_sample=args.trace_sample,
            ),
        )
    else:
        server = build_server(
            registry,
            ServeConfig(
                host=args.host,
                port=args.port,
                default_city=args.city,
                trace_sample_rate=args.trace_sample,
                alert_rules_path=args.alert_rules,
                alert_log=alert_log,
                alert_interval_s=args.alert_interval,
                quantized=args.quantized,
            ),
        )
    scheduler = None
    if args.refit:
        from repro.stream.attach import attach_refit

        _, scheduler = attach_refit(
            server,
            interval_s=args.refit_interval,
            window_s=args.refit_window,
            jobs=args.jobs,
            ledger_path=None if args.no_ledger else (args.ledger or "auto"),
        )
    host, port = server.server_address[:2]
    # The smoke test and tooling parse this line to find the bound port.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        return serve_until_shutdown(server)
    finally:
        if scheduler is not None:
            scheduler.stop()


def _cmd_stream_run(args) -> int:
    from repro.serve.registry import ModelRegistry
    from repro.stream.clock import SimClock
    from repro.stream.firehose import (
        DriftSegment,
        MeasurementStream,
        StreamMux,
    )
    from repro.stream.monitor import StreamMonitor
    from repro.stream.run import StreamSession, warmup_and_register
    from repro.stream.scheduler import RefitPolicy, RefitScheduler

    vendors = [v.strip() for v in args.vendors.split(",") if v.strip()]
    unknown = sorted(set(vendors) - {"ookla", "mlab", "mba"})
    if not vendors or unknown:
        print(f"unknown vendors: {', '.join(unknown) or args.vendors!r}")
        return 2
    segments: tuple[DriftSegment, ...] = ()
    if args.drift_at is not None:
        segments = (
            DriftSegment(
                start_s=args.drift_at,
                download_scale=args.drift_scale,
                upload_scale=args.drift_scale,
                tier_share_shift=args.tier_shift,
            ),
        )
    registry = ModelRegistry(args.registry)
    streams = [
        MeasurementStream(
            vendor=vendor,
            city=args.city,
            seed=args.seed + i,
            events_per_s=args.rate / len(vendors),
            batch_size=args.batch,
            pool_size=args.pool,
            segments=segments,
        )
        for i, vendor in enumerate(vendors)
    ]
    for stream in streams:
        record = warmup_and_register(stream, registry, jobs=args.jobs)
        print(
            f"warmup: {stream.vendor} -> {record.key.slug} "
            f"(train_size={record.train_size})"
        )
    source = streams[0] if len(streams) == 1 else StreamMux(streams)
    clock = SimClock()
    monitor = StreamMonitor(
        registry=registry, clock=clock, window_s=args.window
    )
    scheduler = RefitScheduler(
        registry=registry,
        monitor=monitor,
        policy=RefitPolicy(
            min_hold_s=args.min_hold, cooldown_s=args.cooldown
        ),
        clock=clock,
        jobs=args.jobs,
        ledger_path=None if args.no_ledger else (args.ledger or "auto"),
    )
    session = StreamSession(
        source, monitor, clock,
        scheduler=scheduler,
        poll_interval_s=args.poll,
    )
    summary = session.run(duration_s=args.duration)
    alerts = summary["alerts"]
    print(
        f"stream: {summary['n_events']} events / "
        f"{summary['n_batches']} batches over "
        f"{summary['stream_t_s']:.0f}s stream time"
    )
    print(
        f"alerts: fired={alerts['fired']} resolved={alerts['resolved']} "
        f"active={alerts['active']}"
    )
    refits = summary["refits"]
    print(f"refits: {len(refits)}")
    for refit in refits:
        print(
            f"  {refit['model']}: "
            f"drift_to_swap={refit['drift_to_swap_s']:.2f}s "
            f"n={refit['n_samples']} trigger={refit['trigger']}"
        )
    args.run_results = {
        "events": float(summary["n_events"]),
        "refits": float(len(refits)),
        "alerts_fired": float(alerts["fired"]),
        "stream_t_s": float(summary["stream_t_s"]),
    }
    return 0


def _cmd_assign(args) -> int:
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    catalog = city_catalog(args.city)
    hit = registry.lookup(registry.key_for(args.city, catalog)) is not None
    table = read_csv(args.input)
    ctx = contextualize(
        table, catalog, registry=registry, city=args.city, jobs=args.jobs
    )
    write_csv(ctx.table, args.out)
    args.run_results = {
        "rows": float(len(ctx)),
        "registry_hit": float(hit),
    }
    print(
        f"assigned {len(ctx)} rows from "
        f"{'registered model' if hit else 'fresh fit (now registered)'} "
        f"-> {args.out}"
    )
    return 0


def _cmd_describe(args) -> int:
    print(BSTModel(city_catalog(args.city)).describe())
    return 0


def _cmd_dossier(args) -> int:
    from repro.pipeline.dossier import city_dossier

    catalog = city_catalog(args.city)
    tests = OoklaSimulator(args.city, seed=args.seed).generate(args.n)
    ctx = contextualize(tests, catalog, jobs=args.jobs)
    print(city_dossier(ctx, city_label=f"City-{args.city}"))
    return 0


# ---------------------------------------------------------------------------
# Static analysis (repro lint)
# ---------------------------------------------------------------------------
def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        analyze,
        catalog,
        render_json,
        render_text,
        rules_for,
    )
    from repro.analysis.framework import iter_python_files
    from repro.obs import metrics as obs_metrics
    from repro.obs import span

    if args.list_rules:
        rows = [
            [
                rule["id"],
                rule["name"],
                rule["severity"],
                ", ".join(rule["scopes"]),
            ]
            for rule in catalog()
        ]
        print(format_table(rows, ["id", "name", "severity", "scopes"]))
        print("\nfull descriptions: docs/ANALYSIS.md")
        return 0

    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        rules = rules_for(select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.root:
        root = Path(args.root)
    else:
        root = Path("src") if Path("src").is_dir() else Path(".")
    files = None
    if args.paths:
        files = [
            found
            for path in args.paths
            for found in iter_python_files(Path(path))
        ]

    with span("lint.run", rules=len(rules)) as sp:
        report = analyze(root, files=files, rules=rules)
        sp.set(files=report.n_files, findings=len(report.findings))

    if args.write_baseline:
        if not args.baseline:
            print(
                "error: --write-baseline needs --baseline FILE.json",
                file=sys.stderr,
            )
            return 2
        Baseline.from_findings(report.findings).save(args.baseline)
        print(
            f"wrote {len(report.findings)} baseline entries "
            f"to {args.baseline}"
        )
        return 0

    n_baselined = 0
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report.findings, matched = baseline.filter(report.findings)
        n_baselined = len(matched)

    obs_metrics.counter("lint.findings").inc(len(report.findings))
    obs_metrics.counter("lint.rules_run").inc(len(rules))
    args.run_results = {
        "findings": float(len(report.findings)),
        "files_checked": float(report.n_files),
    }

    if args.format == "json":
        print(render_json(report, n_baselined))
    else:
        print(render_text(report, n_baselined))
    return 1 if report.findings else 0


# ---------------------------------------------------------------------------
# Run-ledger inspection (repro obs ...)
# ---------------------------------------------------------------------------
def _open_ledger(args):
    """The ledger an ``obs`` command reads (explicit flag, env, default)."""
    from repro.obs.runs import RunLedger, default_ledger_path

    path = args.ledger or default_ledger_path()
    if path is None:
        print(
            "error: run ledger disabled (REPRO_LEDGER=0); "
            "pass --ledger FILE.jsonl",
            file=sys.stderr,
        )
        return None
    return RunLedger(path)


def _cmd_obs_runs(args) -> int:
    ledger = _open_ledger(args)
    if ledger is None:
        return 2
    manifests = ledger.matching(kind=args.kind, name=args.name)
    if not manifests:
        print(f"no matching runs in {ledger.path}")
        return 0
    rows = [
        [
            m.run_id,
            m.started_utc,
            m.kind,
            m.name,
            f"{m.wall_s:.2f}",
            (m.git_sha or "")[:7] or "n/a",
            "ok" if not m.exit_code else f"exit {m.exit_code}",
        ]
        for m in manifests[-max(args.last, 1):]
    ]
    print(
        format_table(
            rows,
            ["run id", "started (UTC)", "kind", "name", "wall s",
             "git", "status"],
        )
    )
    print(f"{len(manifests)} matching runs in {ledger.path}")
    return 0


def _cmd_obs_show(args) -> int:
    ledger = _open_ledger(args)
    if ledger is None:
        return 2
    try:
        manifest = ledger.find(args.run_id)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(manifest.render())
    return 0


def _cmd_obs_diff(args) -> int:
    ledger = _open_ledger(args)
    if ledger is None:
        return 2
    try:
        a = ledger.find(args.run_a)
        b = ledger.find(args.run_b)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("\n".join(_diff_lines(a, b)))
    return 0


def _diff_lines(a, b) -> list[str]:
    lines = [f"== diff {a.run_id} .. {b.run_id} =="]

    def same_or_changed(label: str, va, vb, short: int | None = None):
        def fmt(value):
            if value is None or value == "":
                return "n/a"
            text = str(value)
            return text[:short] if short else text

        if va == vb:
            lines.append(f"{label}: unchanged ({fmt(va)})")
        else:
            lines.append(f"{label}: {fmt(va)} -> {fmt(vb)}")

    same_or_changed("kind/name", f"{a.kind}/{a.name}", f"{b.kind}/{b.name}")
    same_or_changed("git sha", a.git_sha, b.git_sha, short=12)
    same_or_changed("config hash", a.config_hash, b.config_hash, short=12)
    same_or_changed("seed", a.seed, b.seed)
    lines.append(
        f"wall time: {a.wall_s:.3f} s -> {b.wall_s:.3f} s "
        f"({_pct_delta(a.wall_s, b.wall_s)})"
    )
    if a.peak_rss_bytes and b.peak_rss_bytes:
        lines.append(
            f"peak RSS: {a.peak_rss_bytes / 2**20:.1f} MiB -> "
            f"{b.peak_rss_bytes / 2**20:.1f} MiB "
            f"({_pct_delta(a.peak_rss_bytes, b.peak_rss_bytes)})"
        )
    keys = sorted(set(a.results) | set(b.results))
    if keys:
        lines.append("-- results --")
        for key in keys:
            va, vb = a.results.get(key), b.results.get(key)
            if va is None or vb is None:
                lines.append(
                    f"{key}: {_opt(va)} -> {_opt(vb)} (only one run)"
                )
            else:
                lines.append(
                    f"{key}: {va:.6g} -> {vb:.6g} ({_pct_delta(va, vb)})"
                )
    qa = a.quality.scalars() if a.quality else {}
    qb = b.quality.scalars() if b.quality else {}
    changed = [
        key
        for key in sorted(set(qa) | set(qb))
        if abs(qa.get(key, 0.0) - qb.get(key, 0.0)) > 1e-12
    ]
    if changed:
        lines.append("-- quality --")
        for key in changed:
            lines.append(
                f"{key}: {_opt(qa.get(key))} -> {_opt(qb.get(key))}"
            )
    stages = sorted(
        set(a.span_table) | set(b.span_table),
        key=lambda n: -abs(
            b.span_table.get(n, {}).get("total_s", 0.0)
            - a.span_table.get(n, {}).get("total_s", 0.0)
        ),
    )
    if stages:
        lines.append("-- span stages (top movement) --")
        for name in stages[:8]:
            ta = a.span_table.get(name, {}).get("total_s", 0.0)
            tb = b.span_table.get(name, {}).get("total_s", 0.0)
            lines.append(
                f"{name}: {ta * 1e3:.1f} ms -> {tb * 1e3:.1f} ms "
                f"({_pct_delta(ta, tb)})"
            )
    return lines


def _pct_delta(before: float, after: float) -> str:
    if not before:
        return "n/a"
    delta = (after - before) / before * 100.0
    return f"{delta:+.1f}%"


def _opt(value) -> str:
    return "n/a" if value is None else f"{value:.6g}"


def _cmd_obs_check(args) -> int:
    ledger = _open_ledger(args)
    if ledger is None:
        return 2
    try:
        target = ledger.find(args.run or "latest")
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    history = ledger.matching(kind=target.kind, name=target.name)
    try:
        cut = next(
            i for i, m in enumerate(history) if m.run_id == target.run_id
        )
    except StopIteration:
        cut = len(history)
    baseline = history[max(0, cut - max(args.baseline_n, 1)):cut]
    if not baseline:
        print(
            f"run {target.run_id} ({target.name}): no earlier matching "
            "runs to compare against; recording as baseline"
        )
        return 0

    failures: list[str] = []
    checks = 0

    base_wall = sum(m.wall_s for m in baseline) / len(baseline)
    checks += 1
    if base_wall > 0:
        slowdown = (target.wall_s - base_wall) / base_wall * 100.0
        if slowdown > args.max_slowdown:
            failures.append(
                f"timing regression: wall {target.wall_s:.3f} s is "
                f"{slowdown:+.1f}% vs baseline mean {base_wall:.3f} s "
                f"(threshold {args.max_slowdown:.0f}%)"
            )

    for key in sorted(target.results):
        base_values = [
            m.results[key] for m in baseline if key in m.results
        ]
        base_values = [v for v in base_values if v == v]  # drop NaN
        value = target.results[key]
        if not base_values or value != value:
            continue
        checks += 1
        base_mean = sum(base_values) / len(base_values)
        if base_mean == 0:
            continue
        drift = abs(value - base_mean) / abs(base_mean) * 100.0
        if drift > args.max_metric_delta:
            failures.append(
                f"result drift: {key} = {value:.6g} is {drift:.1f}% off "
                f"baseline mean {base_mean:.6g} "
                f"(threshold {args.max_metric_delta:.0f}%)"
            )

    target_quality = target.quality.scalars() if target.quality else {}
    for key in sorted(target_quality):
        if key.endswith("tail_ratio") or key.endswith("tier_entropy"):
            continue  # unbounded scales; covered by results/entropy_norm
        base_values = [
            m.quality.scalars()[key]
            for m in baseline
            if m.quality and key in m.quality.scalars()
        ]
        if not base_values:
            continue
        checks += 1
        base_mean = sum(base_values) / len(base_values)
        delta = abs(target_quality[key] - base_mean)
        if delta > args.max_quality_delta:
            failures.append(
                f"quality drift: {key} = {target_quality[key]:.4f} moved "
                f"{delta:.4f} from baseline mean {base_mean:.4f} "
                f"(threshold {args.max_quality_delta:.2f})"
            )

    label = (
        f"run {target.run_id} ({target.name}) vs {len(baseline)}-run "
        f"rolling baseline"
    )
    if failures:
        print(f"{label}: {len(failures)} regression(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"{label}: ok ({checks} checks)")
    return 0


def _cmd_obs_watch(args) -> int:
    from repro.obs.watch import watch
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        watch(
            client,
            interval_s=max(args.interval, 0.1),
            max_polls=max(args.count, 0),
            clear=not args.no_clear,
        )
    except KeyboardInterrupt:
        print()  # leave the last snapshot intact
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _resolve_ledger(args) -> "str | None":
    """The ledger path a command should record to, or ``None``.

    Read-only ``obs`` subcommands (``ledger_exempt``) and ``--no-ledger``
    never record.  An explicit ``--ledger`` wins over the ``REPRO_LEDGER``
    environment variable (so a test can force one on even when the env
    disables it), which wins over the ``results/runs.jsonl`` default.
    """
    from repro.obs.runs import default_ledger_path

    if getattr(args, "ledger_exempt", False) or getattr(
        args, "no_ledger", False
    ):
        return None
    explicit = getattr(args, "ledger", None)
    if explicit:
        return str(explicit)
    path = default_ledger_path()
    return str(path) if path is not None else None


def _manifest_name(args) -> str:
    """Ledger name for this invocation (the `obs check` grouping key)."""
    if args.command == "experiment":
        return f"experiment.{args.experiment_id}"
    return args.command


def _run_with_obs(args, argv: "list[str] | None" = None) -> int:
    """Dispatch a parsed command inside the requested obs session.

    With no obs flags and the ledger disabled this adds nothing: no
    collector, no registry, no handlers -- the command runs exactly as
    before.  Otherwise the requested sinks are installed around the
    command and their outputs (metrics summary, trace file, profile)
    emitted after it returns.  When the run ledger is enabled (the
    default; see ``--ledger``/``--no-ledger``/``REPRO_LEDGER``) a span
    collector, metrics registry, and quality monitor always run so the
    appended manifest carries the span digest, metrics snapshot, and
    quality report -- printed output is still governed by the flags.
    """
    from repro import obs
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs import quality as obs_quality

    if args.log_level:
        obs.configure_logging(level=args.log_level, fmt=args.log_format)

    ledger_path = _resolve_ledger(args)
    args.resolved_ledger = ledger_path

    collector = (
        obs.SpanCollector() if (args.trace_out or ledger_path) else None
    )
    registry = (
        obs.MetricsRegistry() if (args.metrics or ledger_path) else None
    )
    quality = obs_quality.QualityMonitor() if ledger_path else None
    report = None

    if args.trace_out:
        # Fail fast on an unwritable trace path rather than discovering
        # it only after the (possibly long) command has finished.
        try:
            with open(args.trace_out, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write --trace-out: {exc}", file=sys.stderr)
            return 2

    recorder = None
    if ledger_path:
        from repro.obs.runs import RunRecorder

        recorder = RunRecorder(
            kind="cli",
            name=_manifest_name(args),
            argv=list(argv) if argv is not None else None,
            params={
                key: value
                for key, value in vars(args).items()
                if key not in ("func", "ledger_exempt", "resolved_ledger")
                and not callable(value)
            },
            seed=getattr(args, "seed", None),
        )

    # NB: "is not None" -- the collector/registry are sized containers,
    # so an empty one is falsy.
    prev_collector = (
        obs_trace.set_collector(collector) if collector is not None else None
    )
    prev_registry = (
        obs_metrics.set_registry(registry) if registry is not None else None
    )
    prev_quality = (
        obs_quality.set_quality(quality) if quality is not None else None
    )
    try:
        if recorder is not None:
            recorder.__enter__()
        try:
            if args.profile:
                from repro.obs.profile import profile_block

                with profile_block() as report:
                    code = args.func(args)
            else:
                code = args.func(args)
        finally:
            if recorder is not None:
                recorder.__exit__(None, None, None)
    finally:
        if collector is not None:
            obs_trace.set_collector(prev_collector)
        if registry is not None:
            obs_metrics.set_registry(prev_registry)
        if quality is not None:
            obs_quality.set_quality(prev_quality)

    if recorder is not None:
        from repro.obs.runs import RunLedger

        manifest = recorder.finish(
            exit_code=code,
            collector=collector,
            registry=registry,
            quality=quality,
            results=getattr(args, "run_results", None),
        )
        try:
            RunLedger(ledger_path).append(manifest)
        except OSError as exc:
            print(f"warning: could not append run ledger: {exc}",
                  file=sys.stderr)
        else:
            print(
                f"recorded run {manifest.run_id} -> {ledger_path}",
                file=sys.stderr,
            )

    if args.metrics and registry is not None:
        print()
        print(registry.render())
    if args.trace_out and collector is not None:
        n_spans = collector.export_jsonl(args.trace_out)
        print(f"wrote {n_spans} spans to {args.trace_out}")
    if report is not None:
        print()
        print("-- profile (top 25 by cumulative time) --")
        print(report.render())
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _run_with_obs(args, argv=argv if argv is not None else sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
