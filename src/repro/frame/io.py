"""CSV persistence for :class:`~repro.frame.table.ColumnTable`.

The format is ordinary RFC-4180-ish CSV written through the standard
library's :mod:`csv` module.  On read, each column is parsed with a simple
type-inference pass: all-int columns become int64, numeric columns become
float64 (empty cells become NaN), everything else stays as Python strings in
an object column.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.frame.table import ColumnTable

__all__ = ["read_csv", "write_csv"]


def write_csv(table: ColumnTable, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    names = table.column_names
    columns = [table[name] for name in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(len(table)):
            writer.writerow([_render(col[i]) for col in columns])


def _render(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and np.isnan(value):
        return ""
    if isinstance(value, np.floating) and np.isnan(value):
        return ""
    return str(value)


def read_csv(path: str | Path) -> ColumnTable:
    """Read a CSV with a header row into a :class:`ColumnTable`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return ColumnTable()
        rows = list(reader)
    if not header:
        return ColumnTable()
    columns: dict[str, np.ndarray] = {}
    for j, name in enumerate(header):
        raw = [row[j] if j < len(row) else "" for row in rows]
        columns[name] = _parse_column(raw)
    return ColumnTable(columns)


def _parse_column(raw: list[str]) -> np.ndarray:
    """Infer int -> float -> str for a column of CSV cells."""
    non_empty = [cell for cell in raw if cell != ""]
    if raw and not non_empty:
        # An all-missing column: NaN floats are the useful reading
        # (empty cells are how NaN was written out).
        return np.full(len(raw), np.nan)
    if non_empty and all(_is_int(cell) for cell in non_empty):
        if len(non_empty) == len(raw):
            return np.asarray([int(cell) for cell in raw], dtype=np.int64)
        # Ints with missing cells must fall back to float for NaN support.
        return np.asarray(
            [float(cell) if cell != "" else np.nan for cell in raw]
        )
    if non_empty and all(_is_float(cell) for cell in non_empty):
        return np.asarray(
            [float(cell) if cell != "" else np.nan for cell in raw]
        )
    return np.asarray(raw, dtype=object)


def _is_int(cell: str) -> bool:
    try:
        int(cell)
    except ValueError:
        return False
    return True


def _is_float(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
