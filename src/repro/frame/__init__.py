"""Lightweight columnar data-table substrate.

The analysis pipeline in this reproduction is a data-frame workload
(filter / group-by / join / aggregate over measurement records).  pandas is
not available in the offline environment, so :mod:`repro.frame` provides a
small, well-tested columnar table built directly on numpy arrays.

Public API:

- :class:`ColumnTable` -- the table itself.
- :class:`GroupBy` -- the lazy group-by view returned by
  :meth:`ColumnTable.groupby`.
- :func:`concat` -- stack tables that share a schema.
- :func:`read_csv` / :func:`write_csv` -- plain-text persistence.
"""

from repro.frame.table import ColumnTable, GroupBy, concat
from repro.frame.io import read_csv, write_csv

__all__ = ["ColumnTable", "GroupBy", "concat", "read_csv", "write_csv"]
