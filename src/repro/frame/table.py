"""A minimal columnar table built on numpy arrays.

:class:`ColumnTable` stores each column as a 1-D numpy array; all columns
share the same length.  Operations return *new* tables -- columns are never
mutated in place by the query API, which keeps the analysis pipeline free of
aliasing surprises.

The feature set is intentionally the subset of pandas this reproduction
needs: boolean filtering, column selection, sorting, group-by with named
aggregations, inner/left joins on key columns, and vertical concatenation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["ColumnTable", "GroupBy", "concat"]


def _as_column(values: Any) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array suitable for a column.

    Strings become object arrays so that mixed-width values never truncate;
    numeric input keeps its dtype (ints are preserved, floats stay floats).
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        raise ValueError("a column must be a sequence, got a scalar")
    if arr.ndim != 1:
        raise ValueError(f"a column must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


class ColumnTable:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Mapping of column name to a 1-D sequence.  All columns must have
        equal length.

    Examples
    --------
    >>> t = ColumnTable({"x": [1, 2, 3], "y": ["a", "b", "a"]})
    >>> len(t)
    3
    >>> t.filter(t["x"] > 1).to_dicts()
    [{'x': 2, 'y': 'b'}, {'x': 3, 'y': 'a'}]
    """

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        self._length = 0
        if columns:
            first = True
            for name, values in columns.items():
                arr = _as_column(values)
                if first:
                    self._length = len(arr)
                    first = False
                elif len(arr) != self._length:
                    raise ValueError(
                        f"column {name!r} has length {len(arr)}, "
                        f"expected {self._length}"
                    )
                self._columns[str(name)] = arr

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> list[str]:
        """Names of the columns, in insertion order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the backing array for ``name``.

        The array is the live backing store; callers must treat it as
        read-only.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """Alias of :meth:`__getitem__` for readability at call sites."""
        return self[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{name}:{arr.dtype}" for name, arr in self._columns.items()
        )
        return f"ColumnTable({self._length} rows; {cols})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnTable):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            a, b = self[name], other[name]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(cls, rows: Sequence[Mapping[str, Any]]) -> "ColumnTable":
        """Build a table from a sequence of row dictionaries.

        All rows must share the same key set; the column order follows the
        first row.
        """
        rows = list(rows)
        if not rows:
            return cls()
        names = list(rows[0])
        key_set = set(names)
        for i, row in enumerate(rows):
            if set(row) != key_set:
                raise ValueError(f"row {i} keys {set(row)} != {key_set}")
        return cls({name: [row[name] for row in rows] for name in names})

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialise the table as a list of row dictionaries."""
        names = self.column_names
        columns = [self._columns[name].tolist() for name in names]
        return [dict(zip(names, values)) for values in zip(*columns)]

    def copy(self) -> "ColumnTable":
        """Deep-copy the table (fresh arrays)."""
        return ColumnTable(
            {name: arr.copy() for name, arr in self._columns.items()}
        )

    def with_column(self, name: str, values: Any) -> "ColumnTable":
        """Return a new table with ``name`` added or replaced."""
        arr = _as_column(values)
        if self._columns and len(arr) != self._length:
            raise ValueError(
                f"column {name!r} has length {len(arr)}, "
                f"expected {self._length}"
            )
        new = dict(self._columns)
        new[str(name)] = arr
        return ColumnTable(new)

    def without_columns(self, names: Iterable[str]) -> "ColumnTable":
        """Return a new table dropping ``names`` (missing names are errors)."""
        drop = set(names)
        missing = drop - set(self._columns)
        if missing:
            raise KeyError(f"cannot drop missing columns: {sorted(missing)}")
        return ColumnTable(
            {n: a for n, a in self._columns.items() if n not in drop}
        )

    def rename(self, mapping: Mapping[str, str]) -> "ColumnTable":
        """Return a new table with columns renamed via ``mapping``."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise KeyError(f"cannot rename missing columns: {sorted(missing)}")
        return ColumnTable(
            {mapping.get(n, n): a for n, a in self._columns.items()}
        )

    # ------------------------------------------------------------------
    # Row-wise queries
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "ColumnTable":
        """Return a new table with only ``names`` (in the given order)."""
        return ColumnTable({name: self[name] for name in names})

    def filter(self, mask: Any) -> "ColumnTable":
        """Return the rows where ``mask`` is true.

        ``mask`` is a boolean array of the table length, or a callable that
        receives this table and returns such an array.
        """
        if callable(mask):
            mask = mask(self)
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError(f"filter mask must be boolean, got {mask.dtype}")
        if len(mask) != self._length:
            raise ValueError(
                f"mask length {len(mask)} != table length {self._length}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: Any) -> "ColumnTable":
        """Return the rows at integer ``indices`` (gather)."""
        indices = np.asarray(indices, dtype=np.intp)
        return ColumnTable(
            {name: arr[indices] for name, arr in self._columns.items()}
        )

    def head(self, n: int = 5) -> "ColumnTable":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(
        self, names: str | Sequence[str], descending: bool = False
    ) -> "ColumnTable":
        """Return the table sorted by one or more key columns (stable)."""
        if isinstance(names, str):
            names = [names]
        if not names:
            raise ValueError("sort_by needs at least one column")
        # np.lexsort sorts by the *last* key first, so reverse the list.
        keys = [self[name] for name in reversed(list(names))]
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a plain dictionary."""
        if not -self._length <= index < self._length:
            raise IndexError(
                f"row {index} out of range for {self._length} rows"
            )
        return {
            name: arr[index].item() if hasattr(arr[index], "item") else arr[index]
            for name, arr in self._columns.items()
        }

    def sample(self, n: int, seed: int = 0) -> "ColumnTable":
        """Random sample of ``n`` rows without replacement (seeded)."""
        if n < 0:
            raise ValueError("sample size cannot be negative")
        n = min(n, self._length)
        rng = np.random.default_rng(seed)
        return self.take(rng.choice(self._length, size=n, replace=False))

    def describe(self) -> "ColumnTable":
        """Per-column summary: dtype, non-null count, min/median/max.

        Non-numeric columns report the distinct-value count in place of
        the numeric summary.
        """
        rows = {
            "column": [],
            "dtype": [],
            "non_null": [],
            "min": [],
            "median": [],
            "max": [],
            "distinct": [],
        }
        for name, arr in self._columns.items():
            rows["column"].append(name)
            rows["dtype"].append(str(arr.dtype))
            if arr.dtype.kind in ("f", "i", "u"):
                values = np.asarray(arr, dtype=float)
                finite = values[np.isfinite(values)]
                rows["non_null"].append(int(finite.size))
                if finite.size:
                    rows["min"].append(float(finite.min()))
                    rows["median"].append(float(np.median(finite)))
                    rows["max"].append(float(finite.max()))
                else:
                    rows["min"].append(np.nan)
                    rows["median"].append(np.nan)
                    rows["max"].append(np.nan)
                rows["distinct"].append(int(np.unique(finite).size))
            else:
                non_null = [v for v in arr.tolist() if v not in (None, "")]
                rows["non_null"].append(len(non_null))
                rows["min"].append(np.nan)
                rows["median"].append(np.nan)
                rows["max"].append(np.nan)
                rows["distinct"].append(len(set(non_null)))
        return ColumnTable(rows)

    def crosstab(self, row_key: str, col_key: str) -> dict[tuple, int]:
        """Counts per (row value, column value) pair."""
        rows = self[row_key]
        cols = self[col_key]
        out: dict[tuple, int] = {}
        for i in range(self._length):
            key = (rows[i], cols[i])
            out[key] = out.get(key, 0) + 1
        return out

    def unique(self, name: str) -> np.ndarray:
        """Return the sorted unique values of a column."""
        return np.unique(self[name])

    def value_counts(self, name: str) -> dict[Any, int]:
        """Return ``{value: count}`` for a column, sorted by value."""
        values, counts = np.unique(self[name], return_counts=True)
        return {
            v.item() if hasattr(v, "item") else v: int(c)
            for v, c in zip(values, counts)
        }

    # ------------------------------------------------------------------
    # Group-by and join
    # ------------------------------------------------------------------
    def groupby(self, names: str | Sequence[str]) -> "GroupBy":
        """Group rows by one or more key columns.

        Returns a :class:`GroupBy` whose :meth:`GroupBy.agg` and
        :meth:`GroupBy.apply` materialise results.
        """
        if isinstance(names, str):
            names = [names]
        return GroupBy(self, list(names))

    def join(
        self,
        other: "ColumnTable",
        on: str | Sequence[str],
        how: str = "inner",
        suffix: str = "_right",
    ) -> "ColumnTable":
        """Join with ``other`` on key column(s) ``on``.

        ``how`` is ``"inner"`` or ``"left"``.  Non-key columns of ``other``
        that collide with columns of ``self`` are renamed with ``suffix``.
        For a left join with no match, numeric right columns become NaN and
        object columns become ``None``.  When a key matches multiple right
        rows, the output contains one row per match pair (SQL semantics).
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        keys = [on] if isinstance(on, str) else list(on)
        for key in keys:
            if key not in self or key not in other:
                raise KeyError(f"join key {key!r} missing from a table")

        right_index: dict[tuple, list[int]] = {}
        right_key_cols = [other[k] for k in keys]
        for i in range(len(other)):
            key = tuple(col[i] for col in right_key_cols)
            right_index.setdefault(key, []).append(i)

        left_rows: list[int] = []
        right_rows: list[int] = []  # -1 marks "no match" for left joins
        left_key_cols = [self[k] for k in keys]
        for i in range(len(self)):
            key = tuple(col[i] for col in left_key_cols)
            matches = right_index.get(key)
            if matches:
                for j in matches:
                    left_rows.append(i)
                    right_rows.append(j)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(-1)

        left_idx = np.asarray(left_rows, dtype=np.intp)
        right_idx = np.asarray(right_rows, dtype=np.intp)
        out: dict[str, np.ndarray] = {
            name: arr[left_idx] for name, arr in self._columns.items()
        }
        matched = right_idx >= 0
        for name, arr in other._columns.items():
            if name in keys:
                continue
            out_name = name if name not in out else name + suffix
            if matched.all():
                out[out_name] = arr[right_idx]
            else:
                # Unmatched left rows need a missing marker.
                if arr.dtype.kind in ("f", "i", "u", "b"):
                    col = np.full(len(right_idx), np.nan, dtype=float)
                else:
                    col = np.full(len(right_idx), None, dtype=object)
                if matched.any():
                    col[matched] = arr[right_idx[matched]]
                out[out_name] = col
        return ColumnTable(out)


class GroupBy:
    """Lazy group-by view produced by :meth:`ColumnTable.groupby`."""

    def __init__(self, table: ColumnTable, keys: list[str]):
        if not keys:
            raise ValueError("groupby needs at least one key column")
        for key in keys:
            if key not in table:
                raise KeyError(f"groupby key {key!r} not in table")
        self._table = table
        self._keys = keys
        self._groups = self._build_groups()

    def _build_groups(self) -> dict[tuple, np.ndarray]:
        key_cols = [self._table[k] for k in self._keys]
        if len(key_cols) == 1:
            return self._build_groups_single(key_cols[0])
        buckets: dict[tuple, list[int]] = {}
        for i in range(len(self._table)):
            key = tuple(col[i] for col in key_cols)
            buckets.setdefault(key, []).append(i)
        return {
            key: np.asarray(rows, dtype=np.intp)
            for key, rows in buckets.items()
        }

    @staticmethod
    def _build_groups_single(column: np.ndarray) -> dict[tuple, np.ndarray]:
        """Vectorised single-key grouping via np.unique + argsort.

        Keys are reordered to first-appearance order so the fast path
        is observably identical to the generic one.
        """
        if column.size == 0:
            return {}
        values, inverse = np.unique(column, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        boundaries = np.flatnonzero(np.diff(inverse[order])) + 1
        chunks = np.split(order, boundaries)
        first_seen = np.argsort(
            [chunk[0] for chunk in chunks], kind="stable"
        )
        groups: dict[tuple, np.ndarray] = {}
        for index in first_seen:
            chunk = chunks[index]
            value = values[inverse[chunk[0]]]
            key = value.item() if hasattr(value, "item") else value
            groups[(key,)] = np.sort(chunk).astype(np.intp)
        return groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[tuple[tuple, ColumnTable]]:
        """Yield ``(key_tuple, group_table)`` pairs in first-seen order."""
        for key, rows in self._groups.items():
            yield key, self._table.take(rows)

    def groups(self) -> dict[tuple, np.ndarray]:
        """Return ``{key_tuple: row_indices}`` (copies of the indices)."""
        return {key: rows.copy() for key, rows in self._groups.items()}

    def size(self) -> ColumnTable:
        """Return a table of group keys plus a ``count`` column."""
        return self.agg(count=("*", "count"))

    def agg(self, **named: tuple[str, str | Callable]) -> ColumnTable:
        """Aggregate each group.

        Each keyword is ``out_name=(column, func)`` where ``func`` is one of
        the strings ``count, sum, mean, median, min, max, std, p95`` or a
        callable receiving the group's column values.  Use column ``"*"``
        with ``count`` to count rows.

        >>> t = ColumnTable({"g": ["a", "a", "b"], "x": [1.0, 3.0, 5.0]})
        >>> t.groupby("g").agg(mean_x=("x", "mean")).to_dicts()
        [{'g': 'a', 'mean_x': 2.0}, {'g': 'b', 'mean_x': 5.0}]
        """
        if not named:
            raise ValueError("agg needs at least one aggregation")
        reducers: dict[str, Callable[[np.ndarray], Any]] = {
            "count": len,
            "sum": np.sum,
            "mean": np.mean,
            "median": np.median,
            "min": np.min,
            "max": np.max,
            "std": lambda v: float(np.std(v, ddof=0)),
            "p95": lambda v: float(np.percentile(v, 95)),
        }
        key_rows: list[tuple] = list(self._groups)
        out: dict[str, list] = {k: [] for k in self._keys}
        for key in key_rows:
            for name, value in zip(self._keys, key):
                out[name].append(value)
        for out_name, (col_name, func) in named.items():
            if isinstance(func, str):
                if func not in reducers:
                    raise ValueError(
                        f"unknown aggregation {func!r}; "
                        f"expected one of {sorted(reducers)}"
                    )
                reducer = reducers[func]
            else:
                reducer = func
            values = []
            for key in key_rows:
                rows = self._groups[key]
                if col_name == "*":
                    values.append(reducer(rows) if callable(reducer) else len(rows))
                else:
                    values.append(reducer(self._table[col_name][rows]))
            out[out_name] = values
        return ColumnTable(out)

    def apply(self, func: Callable[[ColumnTable], Any]) -> dict[tuple, Any]:
        """Call ``func`` on each group table; return ``{key: result}``."""
        return {
            key: func(self._table.take(rows))
            for key, rows in self._groups.items()
        }


def concat(tables: Sequence[ColumnTable]) -> ColumnTable:
    """Vertically stack tables that share an identical column-name set.

    Column order follows the first table.  Mixed dtypes across tables are
    resolved by numpy's concatenate promotion.
    """
    tables = [t for t in tables if len(t.column_names)]
    if not tables:
        return ColumnTable()
    names = tables[0].column_names
    name_set = set(names)
    for i, t in enumerate(tables[1:], start=1):
        if set(t.column_names) != name_set:
            raise ValueError(
                f"table {i} columns {t.column_names} != {names}"
            )
    return ColumnTable(
        {name: np.concatenate([t[name] for t in tables]) for name in names}
    )
