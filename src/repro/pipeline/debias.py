"""Tier-reweighting: correcting the sampling bias BST exposes.

Section 5.1 ends with the paper's warning: "Roughly half of these tests
originate from the lowest subscription tier.  As a result, if we take
any aggregate (such as the median) of speed test data in a locality, we
would, at best, get a representation of the Internet quality obtained
by the lower subscription tiers."

Once BST attaches tiers, the bias is correctable: reweight each test by
``target_share(tier) / sample_share(tier)`` and compute weighted
aggregates.  The target shares can come from a subscription census (the
MBA panel, ISP filings) or be uniform ("what would the median look like
if every plan were sampled equally?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame import ColumnTable

__all__ = [
    "TierWeights",
    "reweight_by_tier",
    "weighted_median",
    "debiased_summary",
]


@dataclass(frozen=True)
class TierWeights:
    """Per-row weights plus the shares they were derived from."""

    weights: np.ndarray
    sample_shares: dict[int, float]
    target_shares: dict[int, float]


def weighted_median(values, weights) -> float:
    """Median of ``values`` under non-negative ``weights``.

    NaN values (and their weights) are dropped; the result is the
    smallest value whose cumulative weight reaches half the total.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must align")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    keep = np.isfinite(values) & (weights > 0)
    values, weights = values[keep], weights[keep]
    if values.size == 0:
        return float("nan")
    order = np.argsort(values)
    values, weights = values[order], weights[order]
    cumulative = np.cumsum(weights)
    cutoff = 0.5 * cumulative[-1]
    index = int(np.searchsorted(cumulative, cutoff))
    # Exactly half the mass below: midpoint convention (matches
    # numpy's unweighted median for uniform weights on even n).
    if (
        index + 1 < values.size
        and abs(cumulative[index] - cutoff) < 1e-12 * cumulative[-1]
    ):
        return float(0.5 * (values[index] + values[index + 1]))
    return float(values[index])


def reweight_by_tier(
    table: ColumnTable,
    target_shares: dict[int, float] | None = None,
    tier_column: str = "bst_tier",
) -> TierWeights:
    """Per-row weights that rebalance the tier mix to ``target_shares``.

    ``target_shares`` maps tier -> desired share (normalised
    internally); ``None`` targets a uniform mix over the tiers present.
    Tiers absent from the sample are dropped from the target (they
    cannot be upweighted from nothing).
    """
    if tier_column not in table:
        raise KeyError(f"no {tier_column!r} column; contextualize first")
    tiers = np.asarray(table[tier_column], dtype=np.int64)
    if tiers.size == 0:
        raise ValueError("cannot reweight an empty table")
    present, counts = np.unique(tiers, return_counts=True)
    sample_shares = {
        int(t): float(c) / tiers.size for t, c in zip(present, counts)
    }
    if target_shares is None:
        target = {int(t): 1.0 for t in present}
    else:
        target = {
            int(t): float(s)
            for t, s in target_shares.items()
            if int(t) in sample_shares and s > 0
        }
        if not target:
            raise ValueError(
                "no overlap between target tiers and the sample"
            )
    total = sum(target.values())
    target = {t: s / total for t, s in target.items()}

    weights = np.zeros(tiers.size)
    for tier, share in target.items():
        mask = tiers == tier
        weights[mask] = share / sample_shares[tier]
    return TierWeights(
        weights=weights,
        sample_shares=sample_shares,
        target_shares=target,
    )


def debiased_summary(
    table: ColumnTable,
    value_column: str = "download_mbps",
    target_shares: dict[int, float] | None = None,
    tier_column: str = "bst_tier",
) -> dict[str, float]:
    """Raw vs tier-rebalanced median of a measurement column.

    Returns ``{"raw_median": ..., "debiased_median": ...}`` -- the
    concrete demonstration that the low-tier sampling skew drags the
    raw aggregate down.
    """
    values = np.asarray(table[value_column], dtype=float)
    tier_weights = reweight_by_tier(
        table, target_shares=target_shares, tier_column=tier_column
    )
    finite = values[np.isfinite(values)]
    raw = float(np.median(finite)) if finite.size else float("nan")
    return {
        "raw_median": raw,
        "debiased_median": weighted_median(values, tier_weights.weights),
    }
