"""QoS analysis: latency by access type and WiFi band.

Ookla records latency alongside throughput (Section 3.1), and prior
work the paper cites ([41], [45]) shows the WiFi hop inflates measured
delay.  Our path simulator models that inflation (the WiFi extra-RTT
and smartphone-stack terms of :class:`~repro.netsim.latency
.LatencyModel`), so the corresponding analysis is provided: latency
distributions partitioned the same way the throughput analyses are.
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.pipeline.diagnosis import GroupComparison

__all__ = ["latency_by_access", "latency_by_band"]


def _latency_comparison(
    factor: str, groups: dict[str, np.ndarray]
) -> GroupComparison:
    return GroupComparison(factor=factor, groups=groups)


def latency_by_access(table: ColumnTable) -> GroupComparison:
    """Latency (ms) of native-app tests, WiFi vs Ethernet.

    The WiFi hop adds queueing and contention delay; medians should
    order WiFi > Ethernet.
    """
    if "latency_ms" not in table:
        raise KeyError("table has no latency_ms column")
    native = table.filter(table["origin"] == "native")
    access = native["access"]
    return _latency_comparison(
        "latency by access type",
        {
            "WiFi": np.asarray(
                native.filter(access == "wifi")["latency_ms"], dtype=float
            ),
            "Ethernet": np.asarray(
                native.filter(access == "ethernet")["latency_ms"],
                dtype=float,
            ),
        },
    )


def latency_by_band(table: ColumnTable) -> GroupComparison:
    """Latency (ms) of Android tests per WiFi band.

    The busier 2.4 GHz channel queues longer; medians should order
    2.4 GHz >= 5 GHz.
    """
    if "latency_ms" not in table:
        raise KeyError("table has no latency_ms column")
    android = table.filter(table["platform"] == "android")
    band = np.asarray(android["wifi_band_ghz"], dtype=float)
    return _latency_comparison(
        "latency by WiFi band",
        {
            "2.4 GHz": np.asarray(
                android.filter(band == 2.4)["latency_ms"], dtype=float
            ),
            "5 GHz": np.asarray(
                android.filter(band == 5.0)["latency_ms"], dtype=float
            ),
        },
    )
