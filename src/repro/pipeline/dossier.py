"""City dossier: the full contextualised picture in one report.

Composes the pipeline's analyses -- tier mix, per-tier delivery,
local-factor medians, challenge triage, metadata audit, debiased
medians -- into a single text dossier for one contextualised dataset.
This is the artefact a policy analyst would actually hand over: the
paper's recommendations applied end to end.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.challenge import CATEGORIES, classify_tests
from repro.pipeline.contextualize import ContextualizedDataset
from repro.pipeline.debias import debiased_summary
from repro.pipeline.diagnosis import (
    access_type_comparison,
    bottleneck_comparison,
    wifi_band_comparison,
)
from repro.pipeline.metadata import audit_metadata, recommend
from repro.pipeline.report import format_table

__all__ = ["city_dossier"]


def city_dossier(ctx: ContextualizedDataset, city_label: str = "") -> str:
    """Render the composite dossier for a contextualised dataset."""
    table = ctx.table
    lines: list[str] = []
    title = city_label or f"{ctx.catalog.isp_name} service area"
    lines.append(f"=== Broadband dossier: {title} ===")
    lines.append(f"{len(table)} contextualised measurements\n")

    # 1. Headline medians, raw vs debiased.
    summary = debiased_summary(table)
    lines.append("-- headline medians (download, Mbps) --")
    lines.append(
        format_table(
            [
                ["raw sample", round(summary["raw_median"], 1)],
                [
                    "tier-rebalanced",
                    round(summary["debiased_median"], 1),
                ],
            ],
            ["estimate", "median"],
        )
    )
    lines.append("")

    # 2. Tier mix and per-tier delivery.
    rows = []
    for label in ctx.group_labels:
        group_rows = ctx.rows_for_group(label)
        if len(group_rows) == 0:
            continue
        normalized = np.asarray(
            group_rows["normalized_download"], dtype=float
        )
        rows.append(
            [
                label,
                len(group_rows),
                f"{len(group_rows) / len(table):.0%}",
                round(float(np.median(normalized)), 2),
            ]
        )
    lines.append("-- subscription mix and delivery --")
    lines.append(
        format_table(
            rows, ["tier group", "tests", "share", "median dl/plan"]
        )
    )
    lines.append("")

    # 3. Local factors (only when device metadata exists).
    if "platform" in table and "access" in table:
        access = access_type_comparison(table).medians()
        band = wifi_band_comparison(table).medians()
        bottleneck = bottleneck_comparison(table)
        lines.append("-- local factors (median dl/plan) --")
        lines.append(
            format_table(
                [
                    ["WiFi", round(access.get("WiFi", float("nan")), 2)],
                    [
                        "Ethernet",
                        round(access.get("Ethernet", float("nan")), 2),
                    ],
                    [
                        "2.4 GHz",
                        round(band.get("2.4 GHz", float("nan")), 2),
                    ],
                    ["5 GHz", round(band.get("5 GHz", float("nan")), 2)],
                    [
                        "Best conditions",
                        round(bottleneck.medians()["Best"], 2),
                    ],
                    [
                        "Local-bottleneck "
                        f"({bottleneck.shares()['Local-bottleneck']:.0%} "
                        "of Android tests)",
                        round(
                            bottleneck.medians()["Local-bottleneck"], 2
                        ),
                    ],
                ],
                ["condition", "median dl/plan"],
            )
        )
        lines.append("")

    # 4. Challenge triage.
    triage = classify_tests(table)
    lines.append("-- FCC challenge triage --")
    lines.append(
        format_table(
            [
                [c, triage.counts.get(c, 0), f"{triage.share(c):.0%}"]
                for c in CATEGORIES
            ],
            ["category", "tests", "share"],
        )
    )
    lines.append("")

    # 5. Metadata audit + recommendations.
    audit = audit_metadata(table)
    lines.append(
        f"-- metadata: interpretability {audit.interpretability:.2f}/1.00 --"
    )
    for i, text in enumerate(recommend(audit), start=1):
        lines.append(f"{i}. {text}")
    return "\n".join(lines)
