"""Local-factor diagnosis of speed test performance (Section 6.1).

Each function partitions a contextualised Ookla table by one local factor
and compares the *normalised* download speed distributions:

- access type (WiFi vs Ethernet) -- Figure 9a;
- WiFi spectrum band (2.4 vs 5 GHz, Android rows only) -- Figure 9b;
- WiFi RSSI bins (5 GHz Android rows) -- Figure 9c;
- available kernel memory bins (5 GHz, good-RSSI Android rows) --
  Figure 9d;
- "Best" vs "Local-bottleneck" (the combined filter) -- Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame import ColumnTable
from repro.netsim.device import memory_bin_label
from repro.stats.descriptive import median

__all__ = [
    "GroupComparison",
    "access_type_comparison",
    "wifi_band_comparison",
    "rssi_comparison",
    "memory_comparison",
    "bottleneck_comparison",
    "rssi_bin_label",
    "RSSI_BIN_LABELS",
    "MEMORY_BIN_LABELS",
]

RSSI_BIN_LABELS = (
    ">= -30 dBm",
    "-50 dBm - -30 dBm",
    "-70 dBm - -50 dBm",
    "< -70 dBm",
)
MEMORY_BIN_LABELS = ("< 2 GB", "2 GB - 4 GB", "4 GB - 6 GB", "> 6 GB")


def rssi_bin_label(rssi_dbm: float) -> str:
    """The Figure 9c bin an RSSI value falls into (best first)."""
    if not np.isfinite(rssi_dbm):
        raise ValueError("RSSI must be finite")
    if rssi_dbm >= -30.0:
        return RSSI_BIN_LABELS[0]
    if rssi_dbm >= -50.0:
        return RSSI_BIN_LABELS[1]
    if rssi_dbm >= -70.0:
        return RSSI_BIN_LABELS[2]
    return RSSI_BIN_LABELS[3]


@dataclass
class GroupComparison:
    """Normalised-download distributions for a labelled partition.

    Attributes
    ----------
    factor:
        The local factor being compared (e.g. "access type").
    groups:
        ``{label: normalised download speeds}`` per partition cell.
    """

    factor: str
    groups: dict[str, np.ndarray]

    def group_median(self, label: str) -> float:
        return median(self.groups[label])

    def medians(self) -> dict[str, float]:
        return {label: median(v) for label, v in self.groups.items()}

    def shares(self) -> dict[str, float]:
        """Fraction of tests in each cell."""
        total = sum(len(v) for v in self.groups.values())
        if total == 0:
            return {label: float("nan") for label in self.groups}
        return {
            label: len(v) / total for label, v in self.groups.items()
        }

    def counts(self) -> dict[str, int]:
        return {label: len(v) for label, v in self.groups.items()}


def _normalized(table: ColumnTable) -> np.ndarray:
    return np.asarray(table["normalized_download"], dtype=float)


def access_type_comparison(table: ColumnTable) -> GroupComparison:
    """WiFi vs Ethernet (native-app rows only; web rows carry no access).

    Figure 9a: the paper reports median normalised download speeds of
    0.28 over WiFi vs 0.71 over Ethernet.
    """
    native = table.filter(table["origin"] == "native")
    access = native["access"]
    return GroupComparison(
        factor="access type",
        groups={
            "WiFi": _normalized(native.filter(access == "wifi")),
            "Ethernet": _normalized(native.filter(access == "ethernet")),
        },
    )


def _android_rows(table: ColumnTable) -> ColumnTable:
    """Android rows are the only ones with band/RSSI/memory metadata."""
    return table.filter(table["platform"] == "android")


def wifi_band_comparison(table: ColumnTable) -> GroupComparison:
    """2.4 GHz vs 5 GHz Android tests (Figure 9b: medians 0.11 vs 0.40)."""
    android = _android_rows(table)
    band = np.asarray(android["wifi_band_ghz"], dtype=float)
    return GroupComparison(
        factor="WiFi band",
        groups={
            "2.4 GHz": _normalized(android.filter(band == 2.4)),
            "5 GHz": _normalized(android.filter(band == 5.0)),
        },
    )


def rssi_comparison(table: ColumnTable) -> GroupComparison:
    """RSSI bins over 5 GHz Android tests (Figure 9c).

    Paper: medians 0.52 / 0.49 / 0.3 / 0.2 best-to-worst, with
    5 / 37 / 49 / 9 percent of tests per bin.
    """
    android = _android_rows(table)
    five = android.filter(
        np.asarray(android["wifi_band_ghz"], dtype=float) == 5.0
    )
    rssi = np.asarray(five["rssi_dbm"], dtype=float)
    groups = {}
    for label in RSSI_BIN_LABELS:
        mask = np.asarray(
            [np.isfinite(r) and rssi_bin_label(r) == label for r in rssi]
        )
        groups[label] = _normalized(five.filter(mask))
    return GroupComparison(factor="WiFi RSSI", groups=groups)


def memory_comparison(table: ColumnTable) -> GroupComparison:
    """Kernel-memory bins for 5 GHz Android tests with RSSI > -50 dBm.

    Figure 9d: the paper restricts to good-signal 5 GHz tests "to minimize
    the impact of other factors" and reports medians 0.16 / 0.48 / 0.52 /
    0.53 worst-to-best with 7 / 17 / 17 / 59 percent of tests per bin.
    """
    android = _android_rows(table)
    band = np.asarray(android["wifi_band_ghz"], dtype=float)
    rssi = np.asarray(android["rssi_dbm"], dtype=float)
    eligible = android.filter((band == 5.0) & (rssi > -50.0))
    memory = np.asarray(eligible["memory_gb"], dtype=float)
    groups = {}
    for label in MEMORY_BIN_LABELS:
        mask = np.asarray(
            [np.isfinite(m) and memory_bin_label(m) == label for m in memory]
        )
        groups[label] = _normalized(eligible.filter(mask))
    return GroupComparison(factor="available memory", groups=groups)


def bottleneck_comparison(
    table: ColumnTable,
    min_memory_gb: float = 2.0,
    min_rssi_dbm: float = -50.0,
) -> GroupComparison:
    """"Best" vs "Local-bottleneck" Android tests (Figure 10).

    Best = 5 GHz band, RSSI better than ``min_rssi_dbm``, and more than
    ``min_memory_gb`` of available kernel memory.  The paper finds 61% of
    Android tests in the Local-bottleneck group, with median normalised
    download speeds of 0.22 vs 0.52 for Best.
    """
    android = _android_rows(table)
    band = np.asarray(android["wifi_band_ghz"], dtype=float)
    rssi = np.asarray(android["rssi_dbm"], dtype=float)
    memory = np.asarray(android["memory_gb"], dtype=float)
    best_mask = (band == 5.0) & (rssi > min_rssi_dbm) & (memory > min_memory_gb)
    return GroupComparison(
        factor="local bottleneck",
        groups={
            "Best": _normalized(android.filter(best_mask)),
            "Local-bottleneck": _normalized(android.filter(~best_mask)),
        },
    )
