"""Challenge-process triage: classify every contextualised test.

The FCC's challenge process (Section 1) lets consumers contest provider
coverage claims with speed test evidence.  The paper's central argument
is that raw slow tests are weak evidence: the slowness may be the plan,
the home WiFi, or the device.  This module classifies each
contextualised measurement into one of four categories so only genuine
access-network under-performance backs a challenge:

- ``meets-plan`` -- performing to the subscribed plan, and not slow in
  absolute terms.
- ``plan-limited`` -- slow in absolute terms (below the broadband
  floor) yet performing to the subscribed plan: the *plan* is slow,
  not the network (not challenge evidence).
- ``local-bottleneck`` -- under-performing the plan with an
  identifiable local cause (2.4 GHz band, weak RSSI, low device
  memory).
- ``challenge-worthy`` -- under-performing the plan with no local
  explanation in the metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame import ColumnTable

__all__ = ["ChallengeConfig", "ChallengeSummary", "classify_tests"]

CATEGORIES = (
    "meets-plan",
    "plan-limited",
    "local-bottleneck",
    "challenge-worthy",
)


@dataclass(frozen=True)
class ChallengeConfig:
    """Thresholds of the triage.

    ``underperformance_ratio`` is the normalised-download floor below
    which a test counts as under-performing its plan;
    ``slow_threshold_mbps`` is the absolute broadband floor (the
    classic FCC 25 Mbps definition).  The local-cause thresholds mirror
    the Section 6.1 bins.
    """

    underperformance_ratio: float = 0.5
    slow_threshold_mbps: float = 25.0
    weak_rssi_dbm: float = -70.0
    low_memory_gb: float = 2.0
    slow_band_ghz: float = 2.4

    def __post_init__(self):
        if not 0 < self.underperformance_ratio <= 1:
            raise ValueError("underperformance_ratio must be in (0, 1]")
        if self.slow_threshold_mbps <= 0:
            raise ValueError("slow_threshold_mbps must be positive")


@dataclass(frozen=True)
class ChallengeSummary:
    """Outcome of :func:`classify_tests`."""

    table: ColumnTable  # input plus a `challenge_category` column
    counts: dict[str, int]

    @property
    def n_tests(self) -> int:
        return len(self.table)

    def share(self, category: str) -> float:
        if category not in CATEGORIES:
            raise KeyError(f"unknown category {category!r}")
        if self.n_tests == 0:
            return float("nan")
        return self.counts.get(category, 0) / self.n_tests

    def challenge_rows(self) -> ColumnTable:
        """Only the challenge-worthy tests (the evidence set)."""
        return self.table.filter(
            self.table["challenge_category"] == "challenge-worthy"
        )


def classify_tests(
    table: ColumnTable,
    config: ChallengeConfig | None = None,
) -> ChallengeSummary:
    """Classify every row of a contextualised table.

    Requires the ``normalized_download`` context column; uses the
    Android metadata columns (band, RSSI, memory) when present to
    identify local causes, treating missing metadata as "no local
    explanation visible" -- exactly the ambiguity the paper's
    recommendations aim to remove.
    """
    config = config or ChallengeConfig()
    if "normalized_download" not in table:
        raise KeyError(
            "classify_tests needs a contextualised table "
            "(run repro.pipeline.contextualize first)"
        )
    if "download_mbps" not in table:
        raise KeyError("classify_tests needs a download_mbps column")
    n = len(table)
    normalized = np.asarray(table["normalized_download"], dtype=float)
    downloads = np.asarray(table["download_mbps"], dtype=float)

    def column_or_nan(name: str) -> np.ndarray:
        if name in table:
            return np.asarray(table[name], dtype=float)
        return np.full(n, np.nan)

    band = column_or_nan("wifi_band_ghz")
    rssi = column_or_nan("rssi_dbm")
    memory = column_or_nan("memory_gb")

    under = normalized < config.underperformance_ratio
    slow_absolute = downloads < config.slow_threshold_mbps
    locally_explained = (
        (np.isfinite(band) & (band == config.slow_band_ghz))
        | (np.isfinite(rssi) & (rssi <= config.weak_rssi_dbm))
        | (np.isfinite(memory) & (memory < config.low_memory_gb))
    )

    categories = np.full(n, "meets-plan", dtype=object)
    categories[~under & slow_absolute] = "plan-limited"
    categories[under & locally_explained] = "local-bottleneck"
    categories[under & ~locally_explained] = "challenge-worthy"

    augmented = table.with_column("challenge_category", categories)
    values, counts = np.unique(categories, return_counts=True)
    return ChallengeSummary(
        table=augmented,
        counts={str(v): int(c) for v, c in zip(values, counts)},
    )
