"""Augment measurement tables with BST subscription-tier context.

This is the paper's Section 5 step: run the BST methodology over a city's
measurements and attach, per row, the assigned tier, its upload-group
label, the plan's advertised speeds, and the *normalised* download/upload
speeds (measured / advertised) that every Section 6 analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bst import BSTModel, BSTResult
from repro.core.config import BSTConfig
from repro.frame import ColumnTable
from repro.market.plans import PlanCatalog
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.quality import get_quality
from repro.obs.trace import span
from repro.stats.descriptive import normalized_values

log = get_logger("pipeline.contextualize")

__all__ = ["contextualize", "ContextualizedDataset"]

CONTEXT_COLUMNS = (
    "bst_tier",
    "bst_group",
    "plan_download_mbps",
    "plan_upload_mbps",
    "normalized_download",
    "normalized_upload",
)


@dataclass
class ContextualizedDataset:
    """A measurement table augmented with subscription-tier context.

    Attributes
    ----------
    table:
        The input table plus the :data:`CONTEXT_COLUMNS`.
    bst_result:
        The underlying BST fit (cluster means, assignments, diagnostics).
    catalog:
        The plan catalog used.
    """

    table: ColumnTable
    bst_result: BSTResult
    catalog: PlanCatalog

    def __len__(self) -> int:
        return len(self.table)

    def rows_for_group(self, group_label: str) -> ColumnTable:
        """All rows whose upload group has ``group_label`` (e.g. "Tier 4")."""
        return self.table.filter(self.table["bst_group"] == group_label)

    def rows_for_tier(self, tier: int) -> ColumnTable:
        """All rows assigned to plan ``tier``."""
        return self.table.filter(self.table["bst_tier"] == tier)

    @property
    def group_labels(self) -> list[str]:
        """Upload-group labels, ascending by upload speed."""
        return [g.tier_label for g in self.bst_result.upload_stage.groups]


def contextualize(
    table: ColumnTable,
    catalog: PlanCatalog,
    config: BSTConfig | None = None,
    download_column: str = "download_mbps",
    upload_column: str = "upload_mbps",
    jobs: int | None = None,
    bst_result: BSTResult | None = None,
    registry=None,
    city: str | None = None,
) -> ContextualizedDataset:
    """Fit BST over ``table`` and attach subscription-tier context columns.

    Rows with non-finite speeds are dropped before fitting (crowdsourced
    data is noisy; a test with a missing direction cannot be assigned).

    ``jobs`` fans the per-upload-group download fits out over a process
    pool (``1`` serial, ``0`` all CPUs); parallel output is identical to
    serial (see docs/PERFORMANCE.md).

    Two ways to skip the fit (see docs/SERVING.md):

    - ``bst_result`` -- apply a pre-fitted model: tiers come from the
      frozen fit's predictors (:class:`repro.serve.engine.TierAssigner`),
      byte-identical to fit-time labels on the training sample.  The
      result's catalog must equal ``catalog``.
    - ``registry`` -- a :class:`repro.serve.registry.ModelRegistry`:
      look up the model for ``(city, catalog, config)``; on a hit,
      apply it; on a miss, fit and register the new model.  ``city``
      defaults to the catalog's ISP name.
    """
    downloads = np.asarray(table[download_column], dtype=float)
    uploads = np.asarray(table[upload_column], dtype=float)
    finite = np.isfinite(downloads) & np.isfinite(uploads)
    quality = get_quality()
    if quality.enabled:
        # Observe the *raw* columns (before the finite filter) so NaN
        # bursts and negative speeds in the input are what gets counted.
        quality.field("contextualize.download_mbps").observe_array(downloads)
        quality.field("contextualize.upload_mbps").observe_array(uploads)
        quality.observe_dropped_rows(
            int(len(table) - finite.sum()), int(len(table))
        )
    if not finite.any():
        raise ValueError("no finite (download, upload) pairs to contextualize")
    if bst_result is not None and registry is not None:
        raise ValueError("pass bst_result or registry, not both")
    if bst_result is not None and bst_result.catalog != catalog:
        raise ValueError(
            "pre-fitted BST result was fitted against a different plan "
            f"catalog ({bst_result.catalog.isp_name!r}, not "
            f"{catalog.isp_name!r})"
        )
    with span(
        "contextualize",
        isp=catalog.isp_name,
        n_rows=int(len(table)),
        n_dropped=int(len(table) - finite.sum()),
    ):
        clean = table.filter(finite)
        downloads = downloads[finite]
        uploads = uploads[finite]

        if registry is not None:
            bst_result = _from_registry(
                registry, catalog, config, city, downloads, uploads, jobs
            )
        if bst_result is not None:
            # Reuse path: predict under the frozen fit, no refit.
            from repro.serve.engine import TierAssigner

            with span("contextualize.apply", n=int(downloads.size)):
                result = TierAssigner(bst_result).to_result(
                    downloads, uploads
                )
        else:
            model = BSTModel(catalog, config)
            result = model.fit(downloads, uploads, jobs=jobs)

        with span("contextualize.augment", n=int(len(clean))):
            plan_down = result.plan_download_for_rows()
            plan_up = result.plan_upload_for_rows()
            augmented = (
                clean.with_column("bst_tier", result.tiers)
                .with_column(
                    "bst_group",
                    np.asarray(result.group_label_for_rows(), dtype=object),
                )
                .with_column("plan_download_mbps", plan_down)
                .with_column("plan_upload_mbps", plan_up)
                .with_column(
                    "normalized_download",
                    normalized_values(downloads, plan_down),
                )
                .with_column(
                    "normalized_upload", normalized_values(uploads, plan_up)
                )
            )
    obs_metrics.counter("contextualize.rows").inc(int(len(augmented)))
    obs_metrics.counter("contextualize.rows_dropped").inc(
        int(len(table) - len(augmented))
    )
    log.info(
        "contextualized measurement table",
        extra=kv(
            isp=catalog.isp_name,
            rows=int(len(augmented)),
            dropped=int(len(table) - len(augmented)),
        ),
    )
    return ContextualizedDataset(
        table=augmented, bst_result=result, catalog=catalog
    )


def _from_registry(
    registry,
    catalog: PlanCatalog,
    config: BSTConfig | None,
    city: str | None,
    downloads: np.ndarray,
    uploads: np.ndarray,
    jobs: int | None,
) -> BSTResult:
    """Load the registered model for this (city, catalog, config), or
    fit and register one from the data at hand."""
    key = registry.key_for(city or catalog.isp_name, catalog, config)
    if registry.lookup(key) is not None:
        obs_metrics.counter("contextualize.registry_hits").inc()
        result, _ = registry.load(key)
        return result
    obs_metrics.counter("contextualize.registry_misses").inc()
    log.info(
        "no registered model; fitting and registering",
        extra=kv(key=key.slug, n=int(downloads.size)),
    )
    result = BSTModel(catalog, config).fit(downloads, uploads, jobs=jobs)
    registry.register(key, result, downloads=downloads, uploads=uploads)
    return result
