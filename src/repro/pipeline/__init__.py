"""Analysis pipeline: contextualise measurements and diagnose performance.

The modules here implement Sections 5 and 6 of the paper:

- :mod:`repro.pipeline.ndt_join` -- associate NDT upload records with
  download records via the 120-second same-client/server window
  (Section 3.2).
- :mod:`repro.pipeline.contextualize` -- run BST over a measurement table
  and attach tier, plan speeds, and normalised speeds (Section 5.1).
- :mod:`repro.pipeline.diagnosis` -- the local-factor analyses: access
  type, WiFi band, RSSI, kernel memory, Best vs Local-bottleneck
  (Section 6.1).
- :mod:`repro.pipeline.timeofday` -- test share and performance by 6-hour
  bin (Section 6.2).
- :mod:`repro.pipeline.vendor_compare` -- Ookla vs M-Lab per tier
  (Section 6.3).
- :mod:`repro.pipeline.report` -- text rendering of tables and CDF series.
"""

from repro.pipeline.contextualize import contextualize, ContextualizedDataset
from repro.pipeline.ndt_join import join_ndt_tests
from repro.pipeline.diagnosis import (
    GroupComparison,
    access_type_comparison,
    wifi_band_comparison,
    rssi_comparison,
    memory_comparison,
    bottleneck_comparison,
    rssi_bin_label,
)
from repro.pipeline.timeofday import (
    time_bin_label,
    TIME_BINS,
    test_share_by_bin,
    normalized_speed_by_bin,
)
from repro.pipeline.vendor_compare import compare_vendors, VendorComparison
from repro.pipeline.report import format_table, cdf_series, render_comparison
from repro.pipeline.metadata import (
    CONTEXT_FIELDS,
    MetadataAudit,
    audit_metadata,
    recommend,
)
from repro.pipeline.challenge import (
    ChallengeConfig,
    ChallengeSummary,
    classify_tests,
)
from repro.pipeline.debias import (
    TierWeights,
    debiased_summary,
    reweight_by_tier,
    weighted_median,
)
from repro.pipeline.qos import latency_by_access, latency_by_band

__all__ = [
    "contextualize",
    "ContextualizedDataset",
    "join_ndt_tests",
    "GroupComparison",
    "access_type_comparison",
    "wifi_band_comparison",
    "rssi_comparison",
    "memory_comparison",
    "bottleneck_comparison",
    "rssi_bin_label",
    "time_bin_label",
    "TIME_BINS",
    "test_share_by_bin",
    "normalized_speed_by_bin",
    "compare_vendors",
    "VendorComparison",
    "format_table",
    "cdf_series",
    "render_comparison",
    "CONTEXT_FIELDS",
    "MetadataAudit",
    "audit_metadata",
    "recommend",
    "ChallengeConfig",
    "ChallengeSummary",
    "classify_tests",
    "TierWeights",
    "debiased_summary",
    "reweight_by_tier",
    "weighted_median",
    "latency_by_access",
    "latency_by_band",
]
