"""Associate NDT upload records with download records (Section 3.2).

"Because NDT measurements do not associate an upload speed test with a
download speed test initiated by the same client, we adopt a similar
methodology to [46].  We compute a 120 second window for every download
speed test and filter all upload speed tests issued from the same client
and server IP address.  If a single upload speed is captured during that
window, we associate it with the download speed.  In the event we observe
more than one upload speed test started during this time frame that meets
this criterion, we associate the earliest upload speed test with the
download speed test."
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger, kv
from repro.obs.trace import span

__all__ = ["join_ndt_tests", "DEFAULT_WINDOW_S"]

DEFAULT_WINDOW_S = 120.0

log = get_logger("pipeline.ndt_join")


def join_ndt_tests(
    ndt_table: ColumnTable,
    window_s: float = DEFAULT_WINDOW_S,
) -> ColumnTable:
    """Pair each NDT download with the earliest in-window upload.

    Parameters
    ----------
    ndt_table:
        NDT records with at least ``direction, client_ip, server_ip,
        timestamp_s, speed_mbps`` columns (the
        :data:`~repro.vendors.schema.MLAB_COLUMNS` schema).
    window_s:
        Window length after each download's start time.

    Returns
    -------
    ColumnTable
        One row per *matched* download with ``download_mbps`` and
        ``upload_mbps`` columns plus the download record's metadata.
        Downloads with no in-window upload from the same client and
        server are dropped (they cannot be tier-assigned).
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    required = {"direction", "client_ip", "server_ip", "timestamp_s",
                "speed_mbps"}
    missing = required - set(ndt_table.column_names)
    if missing:
        raise KeyError(f"NDT table missing columns: {sorted(missing)}")

    with span(
        "ndt_join.join", n_records=int(len(ndt_table)), window_s=window_s
    ) as sp:
        directions = ndt_table["direction"]
        downloads = ndt_table.filter(directions == "download")
        uploads = ndt_table.filter(directions == "upload")

        # Index uploads by (client_ip, server_ip) with sorted timestamps
        # for binary-search matching.
        upload_index: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        up_clients = uploads["client_ip"]
        up_servers = uploads["server_ip"]
        up_times = np.asarray(uploads["timestamp_s"], dtype=float)
        up_speeds = np.asarray(uploads["speed_mbps"], dtype=float)
        buckets: dict[tuple, list[int]] = {}
        for i in range(len(uploads)):
            buckets.setdefault((up_clients[i], up_servers[i]), []).append(i)
        for key, rows in buckets.items():
            rows_arr = np.asarray(rows)
            order = np.argsort(up_times[rows_arr], kind="stable")
            sorted_rows = rows_arr[order]
            upload_index[key] = (
                up_times[sorted_rows], up_speeds[sorted_rows]
            )

        matched_rows: list[int] = []
        matched_uploads: list[float] = []
        dl_clients = downloads["client_ip"]
        dl_servers = downloads["server_ip"]
        dl_times = np.asarray(downloads["timestamp_s"], dtype=float)
        for i in range(len(downloads)):
            key = (dl_clients[i], dl_servers[i])
            entry = upload_index.get(key)
            if entry is None:
                continue
            times, speeds = entry
            start = dl_times[i]
            # Earliest upload with start <= t <= start + window.
            lo = int(np.searchsorted(times, start, side="left"))
            if lo < times.size and times[lo] <= start + window_s:
                matched_rows.append(i)
                matched_uploads.append(float(speeds[lo]))

        joined = downloads.take(np.asarray(matched_rows, dtype=np.intp))
        joined = joined.rename({"speed_mbps": "download_mbps"})
        joined = joined.without_columns(["direction"])
        unmatched = int(len(downloads) - len(matched_rows))
        sp.set(matched=int(len(matched_rows)), unmatched=unmatched)
    obs_metrics.counter("ndt_join.matched").inc(len(matched_rows))
    obs_metrics.counter("ndt_join.unmatched").inc(unmatched)
    log.info(
        "joined NDT records",
        extra=kv(
            downloads=int(len(downloads)),
            matched=int(len(matched_rows)),
            unmatched=unmatched,
        ),
    )
    return joined.with_column(
        "upload_mbps", np.asarray(matched_uploads, dtype=float)
    )
