"""Metadata auditing and the paper's Section 8 recommendations.

The paper closes with recommendations for speed test vendors and the
FCC: every measurement should carry the contextual metadata needed to
interpret it -- subscription plan, access link type, WiFi band and RSSI,
device memory -- coupled to the result as publicly accessible metadata.

This module makes that actionable: :func:`audit_metadata` scores a
measurement table for which context fields are present, and
:func:`recommend` turns the audit into the concrete recommendation list
an operator (vendor or regulator) should implement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frame import ColumnTable

__all__ = [
    "ContextField",
    "CONTEXT_FIELDS",
    "FieldPresence",
    "MetadataAudit",
    "audit_metadata",
    "recommend",
]


@dataclass(frozen=True)
class ContextField:
    """One piece of measurement context the paper deems necessary.

    ``column`` is where the field would appear in a measurement table
    (``aliases`` lists alternative spellings, e.g. the MBA dataset
    publishes the plan as ``tier`` while contextualised tables use
    ``bst_tier``); ``why`` cites the paper's evidence for its
    importance; ``weight`` is the field's share of the
    interpretability score (summing to 1 across
    :data:`CONTEXT_FIELDS`).
    """

    name: str
    column: str
    why: str
    weight: float
    recommendation: str
    aliases: tuple[str, ...] = ()

    def resolve_column(self, table: ColumnTable) -> str | None:
        """The first matching column name in ``table``, if any."""
        for candidate in (self.column, *self.aliases):
            if candidate in table:
                return candidate
        return None


CONTEXT_FIELDS: tuple[ContextField, ...] = (
    ContextField(
        name="subscription plan",
        column="bst_tier",
        why=(
            "Half the tests come from the lowest tiers; without the plan, "
            "a slow test is uninterpretable (Sections 2, 5.1)."
        ),
        weight=0.30,
        recommendation=(
            "Collect the subscription plan from the user where possible; "
            "otherwise infer it (BST) and publish it with each result."
        ),
        aliases=("tier",),
    ),
    ContextField(
        name="access link type",
        column="access",
        why=(
            "WiFi tests achieve a median 0.28 of plan vs 0.71 over "
            "Ethernet (Figure 9a)."
        ),
        weight=0.20,
        recommendation=(
            "Record whether the test ran over WiFi or a wired link "
            "(collectable without user intervention)."
        ),
    ),
    ContextField(
        name="WiFi band",
        column="wifi_band_ghz",
        why=(
            "2.4 GHz tests achieve a median 0.11 of plan vs 0.40 on "
            "5 GHz (Figure 9b)."
        ),
        weight=0.15,
        recommendation="Record the spectrum band of the WiFi association.",
    ),
    ContextField(
        name="WiFi RSSI",
        column="rssi_dbm",
        why=(
            "Performance spans >2x between the best and worst signal "
            "bins (Figure 9c)."
        ),
        weight=0.15,
        recommendation="Record the received signal strength at test time.",
    ),
    ContextField(
        name="device memory",
        column="memory_gb",
        why=(
            "Tests from devices with <2 GB available memory achieve a "
            "median 0.16 of plan vs 0.53 above 6 GB (Figure 9d)."
        ),
        weight=0.10,
        recommendation=(
            "Record the memory available to the kernel during the test."
        ),
    ),
    ContextField(
        name="test methodology",
        column="origin",
        why=(
            "Single-flow NDT under-reports multi-flow results by up to "
            "2x on the same plans (Section 6.3)."
        ),
        weight=0.10,
        recommendation=(
            "Publish the flow count / protocol of the test, and design "
            "challenge-grade tests to maximise path throughput."
        ),
    ),
)

assert abs(sum(f.weight for f in CONTEXT_FIELDS) - 1.0) < 1e-9


@dataclass(frozen=True)
class FieldPresence:
    """Presence statistics of one context field in a table."""

    field: ContextField
    present: bool  # the column exists at all
    coverage: float  # fraction of rows with a usable value


@dataclass(frozen=True)
class MetadataAudit:
    """Outcome of :func:`audit_metadata`.

    ``interpretability`` is the weighted coverage across all context
    fields: 1.0 means every record carries every recommended field.
    """

    n_rows: int
    fields: tuple[FieldPresence, ...]
    interpretability: float

    def missing_fields(self, coverage_floor: float = 0.5) -> list[str]:
        """Names of fields absent or below the coverage floor."""
        return [
            fp.field.name
            for fp in self.fields
            if not fp.present or fp.coverage < coverage_floor
        ]


def _coverage(table: ColumnTable, column: str | None) -> float:
    if column is None or column not in table or len(table) == 0:
        return 0.0
    values = table[column]
    if values.dtype.kind == "f":
        return float(np.mean(np.isfinite(np.asarray(values, dtype=float))))
    usable = [
        v is not None and v != "" and v != "unknown" for v in values.tolist()
    ]
    return float(np.mean(usable))


def audit_metadata(table: ColumnTable) -> MetadataAudit:
    """Score a measurement table against the recommended context fields.

    Works on raw vendor tables and on contextualised tables (where
    ``bst_tier`` supplies the subscription-plan field).
    """
    presences = []
    score = 0.0
    for field in CONTEXT_FIELDS:
        column = field.resolve_column(table)
        present = column is not None
        coverage = _coverage(table, column) if column else 0.0
        presences.append(
            FieldPresence(field=field, present=present, coverage=coverage)
        )
        score += field.weight * coverage
    return MetadataAudit(
        n_rows=len(table),
        fields=tuple(presences),
        interpretability=score,
    )


def recommend(audit: MetadataAudit, coverage_floor: float = 0.5) -> list[str]:
    """The Section 8 recommendation list, filtered to what's missing.

    Returns the concrete recommendation string for every context field
    that is absent or under-covered in the audited table, ordered by
    field weight (most important first).
    """
    gaps = [
        fp
        for fp in audit.fields
        if not fp.present or fp.coverage < coverage_floor
    ]
    gaps.sort(key=lambda fp: -fp.field.weight)
    return [fp.field.recommendation for fp in gaps]
