"""Time-of-day analysis (Section 6.2).

Tests are binned into four 6-hour local periods.  Two questions:

- *When do people test?*  (Figure 11: the share per bin per tier -- the
  fewest tests run overnight, the most in the afternoon/evening, with
  little variation across tiers.)
- *Does the hour change the result?*  (Figure 12: normalised download
  speed per bin -- "the time of the test does not play a meaningful
  role", with slightly better overnight performance.)
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable

__all__ = [
    "TIME_BINS",
    "time_bin_label",
    "test_share_by_bin",
    "normalized_speed_by_bin",
]

TIME_BINS = ("00-06", "06-12", "12-18", "18-24")


def time_bin_label(hour: int) -> str:
    """The 6-hour bin a local hour falls into."""
    if not 0 <= hour <= 23:
        raise ValueError(f"hour must be 0-23, got {hour}")
    return TIME_BINS[hour // 6]


def _bin_labels(table: ColumnTable) -> np.ndarray:
    hours = np.asarray(table["hour"], dtype=int)
    return np.asarray([time_bin_label(int(h)) for h in hours], dtype=object)


def test_share_by_bin(
    table: ColumnTable,
    group_column: str = "bst_group",
) -> dict[str, dict[str, float]]:
    """Percentage of each group's tests falling in each time bin.

    Returns ``{group_label: {time_bin: percent}}`` (Figure 11's bars).
    """
    labels = _bin_labels(table)
    groups = table[group_column]
    out: dict[str, dict[str, float]] = {}
    for group in sorted(set(groups.tolist())):
        mask = groups == group
        member_bins = labels[mask]
        total = int(mask.sum())
        shares = {}
        for time_bin in TIME_BINS:
            shares[time_bin] = (
                100.0 * float(np.sum(member_bins == time_bin)) / total
                if total
                else float("nan")
            )
        out[str(group)] = shares
    return out


def normalized_speed_by_bin(
    table: ColumnTable,
    group_label: str | None = None,
    group_column: str = "bst_group",
) -> dict[str, np.ndarray]:
    """Normalised download speeds per time bin (Figure 12's CDF inputs).

    ``group_label`` restricts to one upload group (the paper plots
    Tiers 4 and 5); ``None`` uses every row.
    """
    if group_label is not None:
        table = table.filter(table[group_column] == group_label)
    labels = _bin_labels(table)
    speeds = np.asarray(table["normalized_download"], dtype=float)
    return {
        time_bin: speeds[labels == time_bin] for time_bin in TIME_BINS
    }
