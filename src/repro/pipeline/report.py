"""Text rendering of tables and figure series.

matplotlib is unavailable offline, so every "figure" is reproduced as the
numeric series a plotting script would consume: CDF values sampled on a
fixed grid, density curves, and median summaries.  The benchmark harness
prints these with the helpers here, and EXPERIMENTS.md records them.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.stats.descriptive import cdf_at

__all__ = ["format_table", "cdf_series", "render_comparison"]


def format_table(
    rows: Sequence[Sequence[Any]],
    headers: Sequence[str],
) -> str:
    """Render rows as a fixed-width text table.

    >>> print(format_table([["a", 1]], ["name", "n"]))
    name | n
    -----+--
    a    | 1
    """
    if not headers:
        raise ValueError("headers required")
    text_rows = [[_cell(value) for value in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in text_rows))
        if text_rows
        else len(str(headers[j]))
        for j in range(len(headers))
    ]
    header_line = " | ".join(
        str(h).ljust(w) for h, w in zip(headers, widths)
    )
    separator = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in text_rows
    ]
    return "\n".join([header_line, separator, *body])


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "-"
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def cdf_series(
    values,
    points: Sequence[float] | None = None,
    num: int = 21,
) -> list[tuple[float, float]]:
    """Sample a sample's empirical CDF at fixed points.

    Default points span [0, max] evenly; this is the numeric form of every
    CDF figure in the paper.
    """
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if points is None:
        top = float(values.max()) if values.size else 1.0
        points = np.linspace(0.0, top, num)
    fractions = cdf_at(values, points)
    return [(float(p), float(f)) for p, f in zip(points, fractions)]


def render_comparison(
    title: str,
    groups: dict[str, np.ndarray],
    points: Sequence[float] | None = None,
) -> str:
    """Render labelled distributions as a median table plus CDF columns."""
    lines = [title]
    rows = []
    for label, values in groups.items():
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        med = float(np.median(values)) if values.size else float("nan")
        rows.append([label, len(values), med])
    lines.append(format_table(rows, ["group", "n", "median"]))
    if points is not None:
        cdf_rows = []
        labels = list(groups)
        for point in points:
            row: list[Any] = [point]
            for label in labels:
                fraction = cdf_at(groups[label], [point])[0]
                row.append(float(fraction))
            cdf_rows.append(row)
        lines.append("")
        lines.append(format_table(cdf_rows, ["x", *labels]))
    return "\n".join(lines)
