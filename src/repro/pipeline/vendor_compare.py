"""Ookla vs M-Lab comparison within matched subscription tiers
(Section 6.3).

Because both datasets are contextualised with the same catalog, tests
"that, in theory, should achieve similar performance" can be compared:
same tier, same city, same ISP.  The paper finds M-Lab's single-flow NDT
consistently lags Ookla's multi-flow tests -- median normalised download
ratios of roughly 1.2, 2, 1.4 and 1.2 for City-A's four upload groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.contextualize import ContextualizedDataset
from repro.stats.descriptive import median

__all__ = ["VendorComparison", "compare_vendors"]


@dataclass
class VendorComparison:
    """Per-upload-group normalised download comparison of two vendors."""

    group_labels: list[str]
    ookla: dict[str, np.ndarray]
    mlab: dict[str, np.ndarray]

    def medians(self) -> dict[str, tuple[float, float]]:
        """``{group: (ookla_median, mlab_median)}``."""
        return {
            label: (median(self.ookla[label]), median(self.mlab[label]))
            for label in self.group_labels
        }

    def lag_factors(self) -> dict[str, float]:
        """How many times Ookla's median exceeds M-Lab's, per group."""
        out = {}
        for label, (ookla_med, mlab_med) in self.medians().items():
            out[label] = (
                ookla_med / mlab_med if mlab_med > 0 else float("inf")
            )
        return out


def compare_vendors(
    ookla: ContextualizedDataset,
    mlab: ContextualizedDataset,
) -> VendorComparison:
    """Compare two contextualised datasets of the same city and catalog.

    Raises ``ValueError`` when the catalogs differ -- cross-ISP tiers are
    not comparable.
    """
    if ookla.catalog != mlab.catalog:
        raise ValueError(
            "vendor comparison requires the same city/ISP catalog"
        )
    labels = ookla.group_labels
    ookla_groups: dict[str, np.ndarray] = {}
    mlab_groups: dict[str, np.ndarray] = {}
    for label in labels:
        ookla_groups[label] = np.asarray(
            ookla.rows_for_group(label)["normalized_download"], dtype=float
        )
        mlab_groups[label] = np.asarray(
            mlab.rows_for_group(label)["normalized_download"], dtype=float
        )
    return VendorComparison(
        group_labels=labels, ookla=ookla_groups, mlab=mlab_groups
    )
