"""repro: a full reproduction of "The Importance of Contextualization of
Crowdsourced Active Speed Test Measurements" (Paul et al., IMC 2022).

The package builds every system the paper depends on -- a broadband
market model, a network path simulator, Ookla/M-Lab/MBA dataset
simulators -- plus the paper's contribution, the Broadband Subscription
Tier (BST) methodology, and the full analysis pipeline that regenerates
each table and figure of the evaluation.

Quickstart::

    from repro import OoklaSimulator, city_catalog, contextualize

    catalog = city_catalog("A")
    tests = OoklaSimulator("A", seed=0).generate(20_000)
    ctx = contextualize(tests, catalog)
    print(ctx.table.groupby("bst_group").agg(
        n=("*", "count"), median=("normalized_download", "median")))

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core import (
    BSTConfig,
    BSTModel,
    BSTResult,
    accuracy_report,
    alpha_values,
    per_user_consistency_factors,
    tier_accuracy,
    upload_group_accuracy,
)
from repro.frame import ColumnTable, concat, read_csv, write_csv
from repro.market import (
    CITY_IDS,
    Plan,
    PlanCatalog,
    SubscriberPopulation,
    city_catalog,
    state_catalog,
)
from repro.pipeline import (
    access_type_comparison,
    bottleneck_comparison,
    compare_vendors,
    contextualize,
    join_ndt_tests,
    memory_comparison,
    normalized_speed_by_bin,
    rssi_comparison,
    test_share_by_bin,
    wifi_band_comparison,
)
from repro.vendors import MBASimulator, MLabSimulator, OoklaSimulator

__version__ = "1.0.0"

__all__ = [
    "BSTConfig",
    "BSTModel",
    "BSTResult",
    "accuracy_report",
    "alpha_values",
    "per_user_consistency_factors",
    "tier_accuracy",
    "upload_group_accuracy",
    "ColumnTable",
    "concat",
    "read_csv",
    "write_csv",
    "CITY_IDS",
    "Plan",
    "PlanCatalog",
    "SubscriberPopulation",
    "city_catalog",
    "state_catalog",
    "access_type_comparison",
    "bottleneck_comparison",
    "compare_vendors",
    "contextualize",
    "join_ndt_tests",
    "memory_comparison",
    "normalized_speed_by_bin",
    "rssi_comparison",
    "test_share_by_bin",
    "wifi_band_comparison",
    "MBASimulator",
    "MLabSimulator",
    "OoklaSimulator",
    "__version__",
]
