"""Small shared helpers for experiment drivers."""

from __future__ import annotations

import numpy as np

from repro.stats.descriptive import median
from repro.stats.kde import GaussianKDE
from repro.stats.peaks import find_density_peaks

__all__ = ["kde_peak_summary", "median_of", "cdf_table"]


def kde_peak_summary(
    values,
    num_grid: int = 512,
    min_prominence_frac: float = 0.05,
    min_height_frac: float = 0.02,
    log_space: bool = False,
) -> tuple[list[float], list[float]]:
    """KDE a sample and return (peak locations, peak heights).

    With ``log_space`` the density is estimated over ``log(values)`` (the
    right scale for speeds spanning decades) and peak locations are mapped
    back to Mbps.
    """
    values = np.asarray(values, dtype=float)
    if log_space:
        values = values[np.isfinite(values) & (values > 0)]
        kde = GaussianKDE(np.log(values))
    else:
        kde = GaussianKDE(values)
    grid, density = kde.grid(num=num_grid)
    peaks = find_density_peaks(
        grid,
        density,
        min_prominence_frac=min_prominence_frac,
        min_height_frac=min_height_frac,
    )
    locations = [
        float(np.exp(p.location)) if log_space else p.location
        for p in peaks
    ]
    return locations, [p.height for p in peaks]


def median_of(table, column: str) -> float:
    """Median of a table column with NaNs dropped."""
    return median(np.asarray(table[column], dtype=float))


def cdf_table(groups: dict[str, np.ndarray], points) -> list[list]:
    """Rows of CDF values per group at fixed points (figure series)."""
    from repro.stats.descriptive import cdf_at

    rows = []
    labels = list(groups)
    for point in points:
        row: list = [float(point)]
        for label in labels:
            row.append(float(cdf_at(groups[label], [point])[0]))
        rows.append(row)
    return rows
