"""Tables 5-7 and Figures 14-18: the other three cities and states.

Both drivers accept ``jobs``: the per-(city, platform) upload fits of
Tables 5-7 and the per-state full BST fits of Figures 14-18 are
independent, so they fan out over a process pool via
:func:`repro.core.parallel.parallel_map` (results are identical to the
serial order-preserving path).
"""

from __future__ import annotations

import numpy as np

from repro.core.bst import BSTModel, BSTResult, UploadStageFit
from repro.core.parallel import parallel_map
from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.exp_contextualization import platform_splits
from repro.experiments.helpers import kde_peak_summary
from repro.market.isps import city_catalog, state_catalog
from repro.pipeline.report import format_table

__all__ = ["run_tab5_7", "run_fig14_18"]

# Tables 5-7: paper upload-cluster means per city per platform row.
_PAPER_CITY_MEANS = {
    "B": {
        "Android-App": (5.73, 11.54, 22.42, 39.21),
        "Net-Web": (5.38, 11.56, 22.37, 39.62),
        "MLab NDT-Web": (5.44, 11.16, 22.04, 39.23),
    },
    "C": {
        "Android-App": (5.28, 11.53, 22.28, 39.49),
        "Net-Web": (4.89, 11.54, 22.02, 39.53),
        "MLab NDT-Web": (4.76, 10.72, 19.82, 35.47),
    },
    "D": {
        "Android-App": (3.51, 9.73, 28.69),
        "Net-Web": (3.05, 9.7, 28.51),
        "MLab NDT-Web": (2.95, 7.6, 24.94),
    },
}


def _upload_fit_task(args: tuple[BSTModel, np.ndarray]) -> UploadStageFit:
    """Picklable per-(city, platform) worker: stage-one fit only."""
    model, uploads = args
    fit, _ = model.fit_upload_stage(uploads)
    return fit


def _full_fit_task(
    args: tuple[BSTModel, np.ndarray, np.ndarray],
) -> BSTResult:
    """Picklable per-state worker: the full two-stage fit."""
    model, downloads, uploads = args
    return model.fit(downloads, uploads)


def run_tab5_7(
    scale: Scale = Scale.MEDIUM, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    """Tables 5-7: upload clusters per platform for Cities B, C and D."""
    sections: dict[str, str] = {}
    metrics: dict[str, float] = {}
    paper_values: dict[str, float] = {}
    # Gather every (city, platform) fit task first, then fan them out.
    tasks: list[tuple[str, str, BSTModel, np.ndarray]] = []
    for city in ("B", "C", "D"):
        catalog = city_catalog(city)
        model = BSTModel(catalog)
        ookla = data.ookla_dataset(city, scale, seed)
        mlab = data.mlab_joined_dataset(city, scale, seed)
        datasets = dict(platform_splits(ookla))
        datasets["MLab NDT-Web"] = mlab
        for platform, table in datasets.items():
            uploads = np.asarray(table["upload_mbps"], dtype=float)
            uploads = uploads[np.isfinite(uploads)]
            if uploads.size < catalog.num_plans:
                continue
            tasks.append((city, platform, model, uploads))
    fits = parallel_map(
        _upload_fit_task,
        [(model, uploads) for _, _, model, uploads in tasks],
        jobs,
        span_name="experiment.fanout",
    )
    rows_by_city: dict[str, list[list]] = {}
    for (city, platform, model, _), fit in zip(tasks, fits):
        group_labels = [g.tier_label for g in fit.groups]
        row: list = [platform]
        for gi, label in enumerate(group_labels):
            count = int(fit.cluster_counts[gi])
            try:
                mean = fit.mean_for_group(gi)
            except ValueError:
                # No component mapped to this group: report the count
                # but never a NaN mean (and record no metric for it).
                row += [count, "n/a"]
                continue
            row += [count, round(mean, 2)]
            metrics[f"{city}|{platform}|{label}|mean"] = mean
        rows_by_city.setdefault(city, []).append(row)
    for city in ("B", "C", "D"):
        catalog = city_catalog(city)
        group_labels = [g.tier_label for g in catalog.upload_groups()]
        headers = ["platform"]
        for label in group_labels:
            headers += [f"{label} n", f"{label} mean"]
        sections[f"City-{city} ({catalog.isp_name})"] = format_table(
            rows_by_city.get(city, []), headers
        )
        for platform, means in _PAPER_CITY_MEANS[city].items():
            for label, value in zip(group_labels, means):
                paper_values[f"{city}|{platform}|{label}|mean"] = value
    return ExperimentResult(
        experiment_id="tab5-7",
        title="Upload clusters per platform, Cities B-D",
        sections=sections,
        metrics=metrics,
        paper_values=paper_values,
        notes="Cluster means must track each city's offered uploads.",
    )


def run_fig14_18(
    scale: Scale = Scale.MEDIUM, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    """Figures 14-18: appendix KDE summaries for States/Cities B-D.

    Figure 14: MBA upload densities for States B-D (peaks at the offered
    uploads).  Figures 16-18: download densities within each upload
    cluster.  Figure 15 (city upload densities per platform) is covered
    numerically by tab5-7; here the per-state MBA structure is reported.
    """
    sections: dict[str, str] = {}
    metrics: dict[str, float] = {}
    states = ("B", "C", "D")
    tasks: list[tuple[BSTModel, np.ndarray, np.ndarray]] = []
    uploads_by_state: dict[str, np.ndarray] = {}
    for state in states:
        catalog = state_catalog(state)
        mba = data.mba_dataset(state, scale, seed)
        downloads = np.asarray(mba["download_mbps"], dtype=float)
        uploads = np.asarray(mba["upload_mbps"], dtype=float)
        finite = np.isfinite(downloads) & np.isfinite(uploads)
        downloads, uploads = downloads[finite], uploads[finite]
        uploads_by_state[state] = uploads
        tasks.append((BSTModel(catalog), downloads, uploads))
    results = parallel_map(
        _full_fit_task, tasks, jobs, span_name="experiment.fanout"
    )
    for state, result in zip(states, results):
        catalog = state_catalog(state)
        locations, _ = kde_peak_summary(
            uploads_by_state[state], min_prominence_frac=0.03, log_space=True
        )
        metrics[f"{state}|n_upload_peaks"] = float(len(locations))
        rows = [
            [
                "offered",
                ", ".join(f"{u:g}" for u in catalog.upload_speeds),
            ],
            ["kde peaks", ", ".join(f"{p:.1f}" for p in locations)],
        ]
        for gi, stage in sorted(result.download_stages.items()):
            label = result.upload_stage.groups[gi].tier_label
            rows.append(
                [
                    f"{label} download clusters",
                    ", ".join(f"{m:.0f}" for m in stage.cluster_means),
                ]
            )
            metrics[f"{state}|{label}|top_mean"] = float(
                stage.cluster_means.max()
            )
        sections[f"State-{state}"] = format_table(rows, ["series", "values"])
    expected_groups = {
        "B": 4.0,
        "C": 4.0,
        "D": 3.0,
    }
    paper_values = {
        f"{state}|n_upload_peaks": v for state, v in expected_groups.items()
    }
    return ExperimentResult(
        experiment_id="fig14-18",
        title="Appendix: MBA upload/download densities, States B-D",
        sections=sections,
        metrics=metrics,
        paper_values=paper_values,
        notes="Peak counts must match each state's upload-group count.",
    )
