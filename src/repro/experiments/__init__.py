"""Experiment drivers: one per table and figure of the paper's evaluation.

Every driver is a function ``run(scale=..., seed=...) -> ExperimentResult``
registered in :data:`repro.experiments.registry.REGISTRY` under the paper
artifact id (``fig1``, ``tab2``, ...).  Benchmarks call these drivers and
print the rendered result; EXPERIMENTS.md records paper-vs-measured for
each.  ``scale`` trades fidelity for runtime (tests use small scales, the
benchmark harness larger ones).
"""

from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.registry import REGISTRY, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "Scale",
    "REGISTRY",
    "get_experiment",
    "run_experiment",
]
