"""Cross-city consistency: the Section 6 findings beyond City-A.

The paper presents its local-factor and vendor analyses on City-A and
notes "we verify separately that our findings are consistent with the
other three cities".  This experiment performs that verification: for
each of Cities B-D it recomputes the headline orderings (Ethernet >
WiFi, 5 GHz > 2.4 GHz, Best > Local-bottleneck, Ookla > M-Lab per
tier, overnight share smallest) and reports where they hold.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.pipeline.diagnosis import (
    access_type_comparison,
    bottleneck_comparison,
    wifi_band_comparison,
)
from repro.pipeline.report import format_table
from repro.pipeline.timeofday import test_share_by_bin
from repro.pipeline.vendor_compare import compare_vendors

__all__ = ["run_ext_cross_city"]


def _city_checks(city: str, scale: Scale, seed: int) -> dict[str, bool]:
    ookla = data.ookla_contextualized(city, scale, seed)
    mlab = data.mlab_contextualized(city, scale, seed)
    table = ookla.table

    access = access_type_comparison(table).medians()
    band = wifi_band_comparison(table).medians()
    bottleneck = bottleneck_comparison(table)
    vendors = compare_vendors(ookla, mlab)
    shares = test_share_by_bin(table)

    lag_ok = all(lag > 1.0 for lag in vendors.lag_factors().values())
    overnight_ok = all(
        bins["00-06"] == min(bins.values()) for bins in shares.values()
    )
    return {
        "ethernet > wifi": access["Ethernet"] > access["WiFi"],
        "5 GHz > 2.4 GHz": band["5 GHz"] > band["2.4 GHz"],
        "best > bottleneck": (
            bottleneck.medians()["Best"]
            > bottleneck.medians()["Local-bottleneck"]
        ),
        "bottleneck majority": (
            bottleneck.shares()["Local-bottleneck"] > 0.5
        ),
        "ookla > mlab (all tiers)": lag_ok,
        "overnight fewest tests": overnight_ok,
    }


def run_ext_cross_city(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Re-verify the Section 6 orderings in Cities B, C and D."""
    check_names: list[str] = []
    results: dict[str, dict[str, bool]] = {}
    for city in ("B", "C", "D"):
        checks = _city_checks(city, scale, seed)
        results[city] = checks
        check_names = list(checks)
    rows = [
        [name, *("yes" if results[c][name] else "NO" for c in "BCD")]
        for name in check_names
    ]
    metrics = {
        f"{city}|{name}": float(results[city][name])
        for city in "BCD"
        for name in check_names
    }
    metrics["all_hold"] = float(
        all(all(checks.values()) for checks in results.values())
    )
    return ExperimentResult(
        experiment_id="ext-cross-city",
        title="Section 6 orderings verified in Cities B-D",
        sections={
            "orderings": format_table(
                rows, ["finding", "City-B", "City-C", "City-D"]
            )
        },
        metrics=metrics,
        notes=(
            "Every headline ordering of the City-A analysis must hold "
            "in the other three cities, as the paper asserts."
        ),
    )
