"""Ablations of the BST design choices (DESIGN.md Section 5).

Four design decisions the paper makes implicitly or explicitly, each
quantified on the simulated MBA State-A panel (where ground truth
exists) and, where relevant, on noisy crowdsourced data:

1. Upload-first vs download-first clustering (Section 4.1's insight).
2. GMM vs K-Means (Section 4.2's argument for variance-aware clusters).
3. Catalog-seeded vs blind component initialisation.
4. The consistency-factor statistic (mean/p95 vs median/p95).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import accuracy_report, tier_accuracy
from repro.core.bst import BSTModel
from repro.core.config import BSTConfig
from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.market.isps import state_catalog
from repro.pipeline.report import format_table
from repro.stats.descriptive import median
from repro.stats.gmm import GaussianMixture

__all__ = [
    "run_ablation_upload_first",
    "run_ablation_clusterer",
    "run_ablation_seeding",
    "run_ablation_consistency_metric",
    "run_ablation_joint_2d",
]


def _download_first_accuracy(mba, catalog) -> float:
    """Baseline: one-stage clustering on download speed alone.

    Fits a GMM with one component per plan, seeded at the advertised
    download speeds, and assigns each measurement the tier of its
    component -- no upload information at all.
    """
    downloads = np.asarray(mba["download_mbps"], dtype=float)
    offered = np.asarray(
        [p.download_mbps for p in catalog.plans], dtype=float
    )
    gmm = GaussianMixture(
        len(offered), means_init=offered, mean_prior_strength=0.08
    )
    gmm.fit(downloads)
    labels = gmm.predict(downloads)
    tiers = np.asarray([catalog.plans[label].tier for label in labels])
    truth = np.asarray(mba["tier"], dtype=np.int64)
    return float(np.mean(tiers == truth))


def run_ablation_upload_first(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Upload-first (BST) vs download-first tier assignment accuracy."""
    catalog = state_catalog("A")
    mba = data.mba_dataset("A", scale, seed)
    bst = BSTModel(catalog).fit(mba["download_mbps"], mba["upload_mbps"])
    bst_acc = tier_accuracy(bst, mba["tier"])
    dl_acc = _download_first_accuracy(mba, catalog)
    return ExperimentResult(
        experiment_id="ablation-upload-first",
        title="Upload-first (BST) vs download-only tier assignment",
        sections={
            "accuracy": format_table(
                [
                    ["BST (upload first)", round(bst_acc, 4)],
                    ["download-only GMM", round(dl_acc, 4)],
                ],
                ["method", "tier accuracy"],
            )
        },
        metrics={
            "bst_accuracy": bst_acc,
            "download_first_accuracy": dl_acc,
            "advantage": bst_acc - dl_acc,
        },
        notes=(
            "BST's upload stage should dominate: download distributions "
            "overlap across tiers (over-provisioned low tiers reach into "
            "the next tier's range; the saturation shortfall pulls high "
            "tiers down)."
        ),
    )


def run_ablation_clusterer(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """GMM (paper's choice) vs K-Means inside the BST pipeline."""
    catalog = state_catalog("A")
    mba = data.mba_dataset("A", scale, seed)
    rows = []
    metrics: dict[str, float] = {}
    for clustering in ("gmm", "kmeans"):
        config = BSTConfig(clustering=clustering)
        result = BSTModel(catalog, config).fit(
            mba["download_mbps"], mba["upload_mbps"]
        )
        report = accuracy_report(result, mba["tier"])
        rows.append(
            [
                clustering,
                round(report.upload_group_accuracy, 4),
                round(report.tier_accuracy, 4),
            ]
        )
        metrics[f"{clustering}_upload_accuracy"] = (
            report.upload_group_accuracy
        )
        metrics[f"{clustering}_tier_accuracy"] = report.tier_accuracy
    return ExperimentResult(
        experiment_id="ablation-clusterer",
        title="GMM vs K-Means within the BST pipeline (MBA State-A)",
        sections={
            "accuracy": format_table(
                rows, ["clusterer", "upload acc", "tier acc"]
            )
        },
        metrics=metrics,
        notes=(
            "On well-separated wired data both do well; GMM's variance "
            "modelling matters on overlapping crowdsourced clusters."
        ),
    )


def run_ablation_seeding(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Catalog-seeded vs blind initialisation of stage-one components."""
    catalog = state_catalog("A")
    mba = data.mba_dataset("A", scale, seed)
    ookla_ctx = data.ookla_contextualized("A", scale, seed)
    rows = []
    metrics: dict[str, float] = {}
    for seeded in (True, False):
        config = BSTConfig(seed_means_from_catalog=seeded)
        result = BSTModel(catalog, config).fit(
            mba["download_mbps"], mba["upload_mbps"]
        )
        report = accuracy_report(result, mba["tier"])
        label = "catalog-seeded" if seeded else "blind"
        rows.append(
            [
                label,
                round(report.upload_group_accuracy, 4),
                round(report.tier_accuracy, 4),
            ]
        )
        metrics[f"{label}_upload_accuracy"] = report.upload_group_accuracy
    # Crowdsourced check: blind init on noisy Ookla uploads.
    ookla_truth = np.asarray(ookla_ctx.table["true_tier"], dtype=np.int64)
    city_model = BSTModel(
        ookla_ctx.catalog, BSTConfig(seed_means_from_catalog=False)
    )
    blind_city = city_model.fit(
        ookla_ctx.table["download_mbps"], ookla_ctx.table["upload_mbps"]
    )
    from repro.core.assignment import upload_group_accuracy

    metrics["blind_city_upload_accuracy"] = upload_group_accuracy(
        blind_city, ookla_truth
    )
    metrics["seeded_city_upload_accuracy"] = upload_group_accuracy(
        ookla_ctx.bst_result, ookla_truth
    )
    rows.append(
        [
            "city (seeded vs blind)",
            round(metrics["seeded_city_upload_accuracy"], 4),
            round(metrics["blind_city_upload_accuracy"], 4),
        ]
    )
    return ExperimentResult(
        experiment_id="ablation-seeding",
        title="Catalog-seeded vs blind GMM initialisation",
        sections={
            "accuracy": format_table(
                rows, ["variant", "upload acc", "tier acc / blind"]
            )
        },
        metrics=metrics,
        notes=(
            "The menu knowledge from the plan-query tool is what lets "
            "BST anchor components; blind initialisation degrades on "
            "noisy crowdsourced uploads."
        ),
    )


def _joint_2d_accuracy(downloads, uploads, truth, catalog) -> float:
    """Joint (download, upload) GMM baseline: one fit, one component per
    plan, seeded at the advertised speed pairs."""
    from repro.stats.gmm2d import GaussianMixture2D

    data = np.column_stack(
        [np.asarray(downloads, dtype=float), np.asarray(uploads, dtype=float)]
    )
    # Sort plans the same way the fit sorts components: by (up, down).
    plans = sorted(
        catalog.plans, key=lambda p: (p.upload_mbps, p.download_mbps)
    )
    means_init = np.asarray(
        [[p.download_mbps, p.upload_mbps] for p in plans], dtype=float
    )
    gmm = GaussianMixture2D(
        len(plans), means_init=means_init, mean_prior_strength=0.2
    )
    gmm.fit(data)
    labels = gmm.predict(data)
    # Re-map fitted components to plans by nearest (upload, download)
    # advertised pair, since EM can reorder them.
    fitted = gmm.result_.means
    assigned_tiers = np.empty(len(labels), dtype=np.int64)
    plan_tier = np.empty(len(plans), dtype=np.int64)
    for k in range(len(plans)):
        distances = [
            abs(np.log(max(fitted[k, 1], 1e-6)) - np.log(p.upload_mbps))
            + abs(np.log(max(fitted[k, 0], 1e-6)) - np.log(p.download_mbps))
            for p in plans
        ]
        plan_tier[k] = plans[int(np.argmin(distances))].tier
    assigned_tiers = plan_tier[labels]
    return float(np.mean(assigned_tiers == np.asarray(truth)))


def run_ablation_joint_2d(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Two-stage BST vs a single joint 2-D GMM over (download, upload).

    The staged design first exploits the near-noiseless upload dimension;
    a joint fit must absorb the heavy WiFi-driven download spread into
    the same components, which blurs tier boundaries on crowdsourced
    data.
    """
    catalog = state_catalog("A")
    mba = data.mba_dataset("A", scale, seed)
    bst = BSTModel(catalog).fit(mba["download_mbps"], mba["upload_mbps"])
    staged_mba = tier_accuracy(bst, mba["tier"])
    joint_mba = _joint_2d_accuracy(
        mba["download_mbps"], mba["upload_mbps"], mba["tier"], catalog
    )

    ookla_ctx = data.ookla_contextualized("A", scale, seed)
    city_truth = np.asarray(ookla_ctx.table["true_tier"], dtype=np.int64)
    staged_city = float(
        np.mean(ookla_ctx.bst_result.tiers == city_truth)
    )
    joint_city = _joint_2d_accuracy(
        ookla_ctx.table["download_mbps"],
        ookla_ctx.table["upload_mbps"],
        city_truth,
        ookla_ctx.catalog,
    )
    rows = [
        ["MBA State-A (wired)", round(staged_mba, 4), round(joint_mba, 4)],
        ["City-A Ookla (WiFi-heavy)", round(staged_city, 4),
         round(joint_city, 4)],
    ]
    return ExperimentResult(
        experiment_id="ablation-joint-2d",
        title="Two-stage BST vs joint 2-D GMM over (download, upload)",
        sections={
            "tier accuracy": format_table(
                rows, ["dataset", "staged BST", "joint 2-D GMM"]
            )
        },
        metrics={
            "staged_mba": staged_mba,
            "joint_mba": joint_mba,
            "staged_city": staged_city,
            "joint_city": joint_city,
        },
        notes=(
            "Staging should win (or tie) everywhere, with the margin "
            "widening on noisy crowdsourced data."
        ),
    )


def run_ablation_consistency_metric(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Mean/p95 (the paper's consistency factor) vs median/p95."""
    ookla = data.ookla_dataset("A", scale, seed)
    ios = ookla.filter(ookla["platform"] == "ios")
    rows = []
    metrics: dict[str, float] = {}
    for column, direction in (
        ("download_mbps", "download"),
        ("upload_mbps", "upload"),
    ):
        mean_cfs = []
        median_cfs = []
        for _, group in ios.groupby("user_id"):
            speeds = np.asarray(group[column], dtype=float)
            if speeds.size < 5:
                continue
            p95 = float(np.percentile(speeds, 95))
            if p95 <= 0:
                continue
            mean_cfs.append(float(speeds.mean()) / p95)
            median_cfs.append(float(np.median(speeds)) / p95)
        mean_med = median(np.asarray(mean_cfs))
        median_med = median(np.asarray(median_cfs))
        rows.append([direction, round(mean_med, 3), round(median_med, 3)])
        metrics[f"{direction}_mean_p95"] = mean_med
        metrics[f"{direction}_median_p95"] = median_med
    return ExperimentResult(
        experiment_id="ablation-consistency-metric",
        title="Consistency factor statistic: mean/p95 vs median/p95",
        sections={
            "median factor across users": format_table(
                rows, ["direction", "mean/p95", "median/p95"]
            )
        },
        metrics=metrics,
        notes=(
            "Both statistics must rank upload as more consistent than "
            "download; median/p95 is more robust to the heavy tail the "
            "paper notes can push mean/p95 above 1."
        ),
    )
