"""Figures 9 and 10: local-factor impact on normalised download speed."""

from __future__ import annotations

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.pipeline.diagnosis import (
    GroupComparison,
    access_type_comparison,
    bottleneck_comparison,
    memory_comparison,
    rssi_comparison,
    wifi_band_comparison,
)
from repro.pipeline.report import format_table

__all__ = ["run_fig9", "run_fig10"]


def _comparison_section(comparison: GroupComparison) -> str:
    medians = comparison.medians()
    shares = comparison.shares()
    rows = [
        [label, comparison.counts()[label], round(shares[label], 3),
         round(medians[label], 3)]
        for label in comparison.groups
    ]
    return format_table(rows, ["group", "n", "share", "median norm dl"])


_PAPER_FIG9 = {
    "wifi_median": 0.28,
    "ethernet_median": 0.71,
    "band24_median": 0.11,
    "band5_median": 0.40,
    "rssi_best_median": 0.52,
    "rssi_good_median": 0.49,
    "rssi_fair_median": 0.30,
    "rssi_poor_median": 0.20,
    "mem_lt2_median": 0.16,
    "mem_2_4_median": 0.48,
    "mem_4_6_median": 0.52,
    "mem_gt6_median": 0.53,
}


def run_fig9(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 9(a-d): access type, WiFi band, RSSI and memory effects."""
    ctx = data.ookla_contextualized("A", scale, seed)
    table = ctx.table
    access = access_type_comparison(table)
    band = wifi_band_comparison(table)
    rssi = rssi_comparison(table)
    memory = memory_comparison(table)

    rssi_meds = rssi.medians()
    mem_meds = memory.medians()
    metrics = {
        "wifi_median": access.group_median("WiFi"),
        "ethernet_median": access.group_median("Ethernet"),
        "band24_median": band.group_median("2.4 GHz"),
        "band5_median": band.group_median("5 GHz"),
        "rssi_best_median": rssi_meds[">= -30 dBm"],
        "rssi_good_median": rssi_meds["-50 dBm - -30 dBm"],
        "rssi_fair_median": rssi_meds["-70 dBm - -50 dBm"],
        "rssi_poor_median": rssi_meds["< -70 dBm"],
        "mem_lt2_median": mem_meds["< 2 GB"],
        "mem_2_4_median": mem_meds["2 GB - 4 GB"],
        "mem_4_6_median": mem_meds["4 GB - 6 GB"],
        "mem_gt6_median": mem_meds["> 6 GB"],
    }
    return ExperimentResult(
        experiment_id="fig9",
        title="Local-factor impact on normalised download speed",
        sections={
            "9a: access type": _comparison_section(access),
            "9b: WiFi band (Android)": _comparison_section(band),
            "9c: RSSI (5 GHz Android)": _comparison_section(rssi),
            "9d: memory (5 GHz, RSSI > -50)": _comparison_section(memory),
        },
        metrics=metrics,
        paper_values=dict(_PAPER_FIG9),
        notes=(
            "Shapes to hold: Ethernet >> WiFi; 5 GHz >> 2.4 GHz; RSSI "
            "monotone; < 2 GB memory sharply capped while bins above "
            "2 GB are similar."
        ),
    )


def run_fig10(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 10: Best vs Local-bottleneck Android tests.

    Paper: 61% of Android tests fall in the Local-bottleneck group and
    achieve a median normalised download speed of 0.22, versus 0.52 for
    the Best group.
    """
    ctx = data.ookla_contextualized("A", scale, seed)
    comparison = bottleneck_comparison(ctx.table)
    shares = comparison.shares()
    medians = comparison.medians()
    return ExperimentResult(
        experiment_id="fig10",
        title="Best vs Local-bottleneck Android tests",
        sections={"comparison": _comparison_section(comparison)},
        metrics={
            "best_median": medians["Best"],
            "bottleneck_median": medians["Local-bottleneck"],
            "bottleneck_share": shares["Local-bottleneck"],
        },
        paper_values={
            "best_median": 0.52,
            "bottleneck_median": 0.22,
            "bottleneck_share": 0.61,
        },
    )
