"""Figures 6-7 and Tables 3-4: contextualising City-A crowdsourced data."""

from __future__ import annotations

import numpy as np

from repro.core.bst import BSTModel
from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.helpers import kde_peak_summary
from repro.frame import ColumnTable
from repro.market.isps import city_catalog
from repro.pipeline.report import format_table

__all__ = [
    "run_fig6",
    "run_tab3",
    "run_fig7",
    "run_tab4",
    "platform_splits",
]

# Table 3 rows: how the Ookla dataset splits by platform.
_PLATFORM_LABELS = {
    "android": "Android-App",
    "ios": "iOS-App",
    "desktop-wifi": "Desktop WiFi-App",
    "desktop-ethernet": "Desktop Ethernet-App",
    "web": "Net-Web",
}


def platform_splits(ookla: ColumnTable) -> dict[str, ColumnTable]:
    """Split an Ookla table into the Table 3 platform rows."""
    platforms = ookla["platform"]
    return {
        label: ookla.filter(platforms == key)
        for key, label in _PLATFORM_LABELS.items()
    }


def run_fig6(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 6: upload densities of Ookla (Android/web) and M-Lab tests.

    Peaks should form near ISP-A's offered uploads for all three
    platforms; the M-Lab data additionally shows a low (~1 Mbps) cluster.
    """
    ookla = data.ookla_dataset("A", scale, seed)
    mlab = data.mlab_joined_dataset("A", scale, seed)
    platforms = ookla["platform"]
    series = {
        "Ookla-Android": np.asarray(
            ookla.filter(platforms == "android")["upload_mbps"], dtype=float
        ),
        "Ookla-Web": np.asarray(
            ookla.filter(platforms == "web")["upload_mbps"], dtype=float
        ),
        "MLab-Web": np.asarray(mlab["upload_mbps"], dtype=float),
    }
    rows = []
    metrics: dict[str, float] = {}
    for label, uploads in series.items():
        locations, _ = kde_peak_summary(uploads, min_prominence_frac=0.03, log_space=True)
        rows.append(
            [label, len(uploads), ", ".join(f"{p:.1f}" for p in locations)]
        )
        metrics[f"n_peaks_{label}"] = float(len(locations))
    offered = ", ".join(
        f"{u:g}" for u in city_catalog("A").upload_speeds
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="City-A upload speed densities per platform",
        sections={
            "KDE peak locations (Mbps)": format_table(
                rows, ["platform", "n", "peaks"]
            ),
            "offered uploads": offered,
        },
        metrics=metrics,
        paper_values={
            "n_peaks_Ookla-Android": 4.0,
            "n_peaks_Ookla-Web": 4.0,
            "n_peaks_MLab-Web": 4.0,
        },
        notes="Paper: four major peaks near the offered uploads, plus an "
        "extra ~1 Mbps cluster in the M-Lab data.",
    )


# Table 3 paper values: (count, mean) per platform per upload group.
_PAPER_TAB3_MEANS = {
    "Android-App": (5.25, 11.29, 17.04, 40.23),
    "iOS-App": (5.30, 11.35, 16.71, 39.82),
    "Desktop WiFi-App": (5.54, 11.59, 16.82, 39.92),
    "Desktop Ethernet-App": (5.69, 11.65, 16.95, 40.13),
    "Net-Web": (5.72, 11.64, 16.69, 40.06),
    "MLab NDT-Web": (5.32, 10.74, 16.71, 39.94),
}


def run_tab3(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Table 3: upload cluster counts and means per platform, City-A."""
    catalog = city_catalog("A")
    model = BSTModel(catalog)
    ookla = data.ookla_dataset("A", scale, seed)
    mlab = data.mlab_joined_dataset("A", scale, seed)
    datasets = dict(platform_splits(ookla))
    datasets["MLab NDT-Web"] = mlab

    group_labels = [g.tier_label for g in catalog.upload_groups()]
    headers = ["platform"]
    for label in group_labels:
        headers += [f"{label} n", f"{label} mean"]
    rows = []
    metrics: dict[str, float] = {}
    for platform, table in datasets.items():
        uploads = np.asarray(table["upload_mbps"], dtype=float)
        uploads = uploads[np.isfinite(uploads)]
        if uploads.size < len(group_labels):
            continue
        fit, groups = model.fit_upload_stage(uploads)
        row: list = [platform]
        for gi, label in enumerate(group_labels):
            count = int(fit.cluster_counts[gi])
            try:
                mean = fit.mean_for_group(gi)
            except ValueError:
                # No component mapped to this group; never render a NaN.
                row += [count, "n/a"]
                continue
            row += [count, round(mean, 2)]
            metrics[f"{platform}|{label}|mean"] = mean
        rows.append(row)
    return ExperimentResult(
        experiment_id="tab3",
        title="City-A upload clusters per platform (counts and means)",
        sections={"clusters": format_table(rows, headers)},
        metrics=metrics,
        paper_values={
            f"{platform}|{label}|mean": value
            for platform, means in _PAPER_TAB3_MEANS.items()
            for label, value in zip(group_labels, means)
        },
        notes="Cluster means should sit near the offered uploads "
        "(5/10/15/35 Mbps) for every platform.",
    )


def run_fig7(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 7: download clusters per upload group, Ookla Android City-A.

    WiFi degradation multiplies the download structure: the paper finds
    five clusters in Tiers 1-3 (two more than the plan menu) and caps the
    higher groups at 10 clusters each.
    """
    ookla = data.ookla_dataset("A", scale, seed)
    android = ookla.filter(ookla["platform"] == "android")
    model = BSTModel(city_catalog("A"))
    result = model.fit(android["download_mbps"], android["upload_mbps"])
    rows = []
    metrics: dict[str, float] = {}
    for gi, stage in sorted(result.download_stages.items()):
        label = result.upload_stage.groups[gi].tier_label
        rows.append(
            [
                label,
                stage.kde_peak_count,
                stage.n_components,
                ", ".join(f"{m:.0f}" for m in stage.cluster_means),
            ]
        )
        metrics[f"n_clusters_{label}"] = float(stage.n_components)
    n_plans = {
        g.tier_label: len(g.plans)
        for g in result.upload_stage.groups
    }
    return ExperimentResult(
        experiment_id="fig7",
        title="Ookla Android download clusters per upload group (City-A)",
        sections={
            "clusters": format_table(
                rows, ["group", "kde peaks", "k", "means (Mbps)"]
            )
        },
        metrics=metrics,
        paper_values={"n_clusters_Tier 1-3": 5.0},
        notes=(
            "WiFi tests form more download clusters than offered plans "
            f"(menu sizes: {n_plans}); the paper observed 5 clusters for "
            "Tiers 1-3 and used 10 for tiers 4-6."
        ),
    )


def run_tab4(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Table 4: download cluster means per platform and tier, City-A.

    The headline contrast: wired (Desktop Ethernet) tests form *fewer*
    download clusters, with means near the advertised download speeds;
    WiFi tests smear into many more clusters.
    """
    catalog = city_catalog("A")
    ookla = data.ookla_dataset("A", scale, seed)
    mlab = data.mlab_joined_dataset("A", scale, seed)
    datasets = dict(platform_splits(ookla))
    datasets["MLab NDT-Web"] = mlab
    model = BSTModel(catalog)
    rows = []
    metrics: dict[str, float] = {}
    for platform, table in datasets.items():
        downloads = np.asarray(table["download_mbps"], dtype=float)
        uploads = np.asarray(table["upload_mbps"], dtype=float)
        if uploads.size < catalog.num_plans:
            continue
        result = model.fit(downloads, uploads)
        for gi, stage in sorted(result.download_stages.items()):
            label = result.upload_stage.groups[gi].tier_label
            rows.append(
                [
                    platform,
                    label,
                    stage.n_components,
                    ", ".join(f"{m:.0f}" for m in stage.cluster_means),
                ]
            )
            metrics[f"{platform}|{label}|k"] = float(stage.n_components)
    # The wired-vs-wireless cluster-count contrast for the shared groups.
    wired_k = sum(
        v for k, v in metrics.items() if k.startswith("Desktop Ethernet")
    )
    android_k = sum(
        v for k, v in metrics.items() if k.startswith("Android")
    )
    metrics["wired_total_clusters"] = wired_k
    metrics["android_total_clusters"] = android_k
    return ExperimentResult(
        experiment_id="tab4",
        title="City-A download cluster means per platform and group",
        sections={
            "clusters": format_table(
                rows, ["platform", "group", "k", "means (Mbps)"]
            )
        },
        metrics=metrics,
        notes=(
            "Paper's Table 4: Ethernet desktops form one cluster per plan "
            "(e.g. 16 / 94 / 231 Mbps for Tiers 1-3) while WiFi platforms "
            "form up to 10 per group."
        ),
    )
