"""Shared experiment scaffolding: result container and scale presets."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.quality import QualityReport

__all__ = ["ExperimentResult", "Scale"]


class Scale(Enum):
    """How much synthetic data an experiment generates.

    SMALL keeps unit/integration tests fast; MEDIUM is the benchmark
    default; LARGE approaches the paper's dataset sizes (Table 1).
    """

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    @property
    def ookla_tests(self) -> int:
        return {"small": 4_000, "medium": 20_000, "large": 120_000}[self.value]

    @property
    def mlab_sessions(self) -> int:
        return {"small": 4_000, "medium": 20_000, "large": 120_000}[self.value]

    @property
    def mba_tests(self) -> int:
        return {"small": 4_000, "medium": 12_000, "large": 25_000}[self.value]


@dataclass
class ExperimentResult:
    """Outcome of one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        Paper artifact id (e.g. "fig9c", "tab2").
    title:
        Human-readable description.
    sections:
        Ordered ``{heading: rendered text}`` blocks (tables, CDF series).
    metrics:
        Headline numbers (medians, accuracies, shares) keyed by name --
        what integration tests assert on and EXPERIMENTS.md records.
    paper_values:
        The corresponding numbers the paper reports, for side-by-side
        comparison.  Keys match ``metrics`` where a direct counterpart
        exists.
    notes:
        Caveats (e.g. known calibration deltas).
    timings:
        Wall-clock seconds keyed by stage (span) name, recorded by
        :func:`repro.experiments.registry.run_experiment` -- always
        includes ``total_s``; per-stage entries appear when a span
        collector is active (``repro.obs``).
    quality:
        Data-quality snapshot (:class:`repro.obs.quality.QualityReport`)
        of the run's inputs and assignments -- attached by
        ``run_experiment`` when a quality monitor is active (the CLI
        installs one whenever the run ledger is enabled), ``None``
        otherwise.
    """

    experiment_id: str
    title: str
    sections: dict[str, str] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    paper_values: dict[str, float] = field(default_factory=dict)
    notes: str = ""
    timings: dict[str, float] = field(default_factory=dict)
    quality: "QualityReport | None" = None

    def render(self) -> str:
        """Full text report of the experiment."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for heading, body in self.sections.items():
            lines.append(f"-- {heading} --")
            lines.append(body)
        if self.metrics:
            lines.append("-- metrics (measured vs paper) --")
            for key in self.metrics:
                measured = self.metrics[key]
                paper = self.paper_values.get(key)
                if paper is None:
                    lines.append(f"{key}: {measured:.4g}")
                else:
                    lines.append(
                        f"{key}: {measured:.4g} (paper: {paper:.4g})"
                    )
        if self.notes:
            lines.append(f"notes: {self.notes}")
        if self.timings:
            lines.append("-- timings --")
            for key, seconds in self.timings.items():
                lines.append(f"{key}: {seconds * 1e3:.1f} ms")
        if self.quality is not None:
            lines.append("-- data quality --")
            lines.append(self.quality.render())
        return "\n".join(lines)
