"""Shared, cached dataset generation for the experiment drivers.

Several experiments consume the same simulated city datasets; generating
and contextualising them is the dominant cost.  This module memoises both
per (city, scale, seed) so a benchmark run touches each dataset once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import Scale
from repro.frame import ColumnTable
from repro.market.isps import city_catalog, state_catalog
from repro.pipeline.contextualize import ContextualizedDataset, contextualize
from repro.pipeline.ndt_join import join_ndt_tests
from repro.vendors.mba import MBASimulator
from repro.vendors.mlab import MLabSimulator
from repro.vendors.ookla import OoklaSimulator

__all__ = [
    "ookla_dataset",
    "mlab_joined_dataset",
    "mba_dataset",
    "ookla_contextualized",
    "mlab_contextualized",
]


@lru_cache(maxsize=32)
def ookla_dataset(city: str, scale: Scale, seed: int) -> ColumnTable:
    """Simulated Ookla measurements for one city."""
    return OoklaSimulator(city, seed=seed).generate(scale.ookla_tests)


@lru_cache(maxsize=32)
def mlab_raw_dataset(city: str, scale: Scale, seed: int) -> ColumnTable:
    """Raw (direction-separated) NDT records for one city."""
    return MLabSimulator(city, seed=seed).generate(scale.mlab_sessions)


@lru_cache(maxsize=32)
def mlab_joined_dataset(city: str, scale: Scale, seed: int) -> ColumnTable:
    """NDT records after the 120 s download/upload association."""
    return join_ndt_tests(mlab_raw_dataset(city, scale, seed))


@lru_cache(maxsize=32)
def mba_dataset(state: str, scale: Scale, seed: int) -> ColumnTable:
    """Simulated MBA panel measurements for one state."""
    return MBASimulator(state, seed=seed).generate(scale.mba_tests)


@lru_cache(maxsize=32)
def ookla_contextualized(
    city: str, scale: Scale, seed: int
) -> ContextualizedDataset:
    """Ookla data with BST tier context attached."""
    return contextualize(ookla_dataset(city, scale, seed), city_catalog(city))


@lru_cache(maxsize=32)
def mlab_contextualized(
    city: str, scale: Scale, seed: int
) -> ContextualizedDataset:
    """Joined M-Lab data with BST tier context attached."""
    return contextualize(
        mlab_joined_dataset(city, scale, seed), city_catalog(city)
    )


def clear_caches() -> None:
    """Drop all memoised datasets (tests use this for isolation)."""
    for fn in (
        ookla_dataset,
        mlab_raw_dataset,
        mlab_joined_dataset,
        mba_dataset,
        ookla_contextualized,
        mlab_contextualized,
    ):
        fn.cache_clear()
