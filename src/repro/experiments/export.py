"""Export experiment reports to a results directory.

``export_all`` runs every registered experiment (or a chosen subset) at
one scale and writes each rendered report to
``<out_dir>/<experiment>.txt`` plus a combined ``summary.txt`` and a
machine-readable ``metrics.csv``.  The CLI's ``report-all`` subcommand
wraps this.

With ``ledger`` set, every experiment additionally appends a
``kind="experiment"`` run manifest (name ``experiment.<id>``, carrying
the experiment's headline metrics, span table, and quality report) to
the given run ledger -- the per-experiment provenance trail ``repro obs
check`` compares against.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.registry import REGISTRY, run_experiment
from repro.frame import ColumnTable, write_csv

__all__ = ["export_all"]


def export_all(
    out_dir: str | Path,
    experiment_ids: list[str] | None = None,
    scale: Scale = Scale.MEDIUM,
    seed: int = 0,
    jobs: int = 1,
    ledger: str | Path | None = None,
) -> dict[str, ExperimentResult]:
    """Run experiments and write their reports under ``out_dir``.

    Returns the results keyed by experiment id.  Unknown ids raise
    before anything runs.  ``jobs`` is forwarded to each experiment (see
    :func:`run_experiment`).  ``ledger`` appends one run manifest per
    experiment to the given JSONL run ledger (see module docstring).
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    ids = sorted(REGISTRY) if experiment_ids is None else experiment_ids
    unknown = [eid for eid in ids if eid not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    results: dict[str, ExperimentResult] = {}
    summary_lines: list[str] = []
    metric_rows: dict[str, list] = {
        "experiment": [],
        "metric": [],
        "measured": [],
        "paper": [],
    }
    for eid in ids:
        if ledger is not None:
            result = _run_with_manifest(eid, scale, seed, jobs, ledger)
        else:
            result = run_experiment(eid, scale=scale, seed=seed, jobs=jobs)
        results[eid] = result
        report = result.render()
        (out_dir / f"{eid.replace('/', '_')}.txt").write_text(
            report + "\n"
        )
        summary_lines.append(report)
        summary_lines.append("")
        for name, value in result.metrics.items():
            metric_rows["experiment"].append(eid)
            metric_rows["metric"].append(name)
            metric_rows["measured"].append(float(value))
            paper = result.paper_values.get(name)
            metric_rows["paper"].append(
                float(paper) if paper is not None else float("nan")
            )
    (out_dir / "summary.txt").write_text("\n".join(summary_lines))
    write_csv(ColumnTable(metric_rows), out_dir / "metrics.csv")
    return results


def _run_with_manifest(
    eid: str, scale: Scale, seed: int, jobs: int, ledger: str | Path
) -> ExperimentResult:
    """Run one experiment under fresh obs sinks and ledger its manifest."""
    from repro.obs import use_collector, use_quality, use_registry
    from repro.obs.runs import RunLedger, RunRecorder

    recorder = RunRecorder(
        kind="experiment",
        name=f"experiment.{eid}",
        params={
            "experiment_id": eid,
            "scale": scale.value,
            "seed": seed,
            "jobs": jobs,
        },
        seed=seed,
    )
    with use_collector() as collector, use_registry() as registry:
        with use_quality() as quality:
            with recorder:
                result = run_experiment(
                    eid, scale=scale, seed=seed, jobs=jobs
                )
    manifest = recorder.finish(
        exit_code=0,
        collector=collector,
        registry=registry,
        quality=quality,
        results=dict(result.metrics),
    )
    RunLedger(ledger).append(manifest)
    return result
