"""Registry mapping paper artifact ids to experiment drivers."""

from __future__ import annotations

import inspect
import time
from typing import Callable

from repro.obs import metrics as obs_metrics
from repro.obs.quality import get_quality
from repro.obs.trace import get_collector, span

from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.exp_ablations import (
    run_ablation_clusterer,
    run_ablation_consistency_metric,
    run_ablation_joint_2d,
    run_ablation_seeding,
    run_ablation_upload_first,
)
from repro.experiments.exp_bst_validation import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_tab2,
)
from repro.experiments.exp_cities import run_fig14_18, run_tab5_7
from repro.experiments.exp_cross_city import run_ext_cross_city
from repro.experiments.exp_extensions import (
    run_ablation_transfer,
    run_ext_debias,
    run_ext_geolocation,
    run_ext_latency,
    run_ext_metadata,
    run_ext_modem,
    run_ext_paired_vendors,
)
from repro.experiments.exp_consistency import run_fig2, run_fig8
from repro.experiments.exp_contextualization import (
    run_fig6,
    run_fig7,
    run_tab3,
    run_tab4,
)
from repro.experiments.exp_local_factors import run_fig9, run_fig10
from repro.experiments.exp_motivating import run_fig1, run_tab1
from repro.experiments.exp_timeofday import run_fig11, run_fig12
from repro.experiments.exp_vendor import run_fig13

__all__ = ["REGISTRY", "get_experiment", "run_experiment"]

Runner = Callable[..., ExperimentResult]

REGISTRY: dict[str, Runner] = {
    "fig1": run_fig1,
    "tab1": run_tab1,
    "fig2": run_fig2,
    "tab2": run_tab2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "tab3": run_tab3,
    "fig7": run_fig7,
    "tab4": run_tab4,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "tab5-7": run_tab5_7,
    "fig14-18": run_fig14_18,
    "ablation-upload-first": run_ablation_upload_first,
    "ablation-clusterer": run_ablation_clusterer,
    "ablation-seeding": run_ablation_seeding,
    "ablation-consistency-metric": run_ablation_consistency_metric,
    "ablation-joint-2d": run_ablation_joint_2d,
    "ablation-transfer": run_ablation_transfer,
    "ext-modem": run_ext_modem,
    "ext-geolocation": run_ext_geolocation,
    "ext-metadata": run_ext_metadata,
    "ext-debias": run_ext_debias,
    "ext-cross-city": run_ext_cross_city,
    "ext-latency": run_ext_latency,
    "ext-paired-vendors": run_ext_paired_vendors,
}


def get_experiment(experiment_id: str) -> Runner:
    """Look up a driver by artifact id; raises ``KeyError`` with options."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(REGISTRY)}"
        ) from None


def run_experiment(
    experiment_id: str,
    scale: Scale = Scale.MEDIUM,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Run one registered experiment.

    Always records the total wall time in ``result.timings["total_s"]``.
    When a span collector is active (``repro.obs``), the run is wrapped
    in an ``experiment.<id>`` span and per-stage span totals (seconds,
    keyed by span name) are attached to ``timings`` as well.

    ``jobs`` is forwarded to drivers that declare a ``jobs`` parameter
    (the multi-city experiments fan their independent per-(city, ISP)
    fits out over a process pool); drivers without one run unchanged.
    Parallel runs produce the same results as serial ones.

    When a quality monitor is active (``repro.obs.quality``), the
    monitor's report is attached to ``result.quality`` and its headline
    rates are published as ``quality.*`` gauges.
    """
    runner = get_experiment(experiment_id)
    kwargs: dict = {"scale": scale, "seed": seed}
    if "jobs" in inspect.signature(runner).parameters:
        kwargs["jobs"] = jobs
    collector = get_collector()
    before = len(collector.spans()) if collector.enabled else 0
    start = time.perf_counter()
    with span(
        "experiment." + experiment_id, scale=scale.value, seed=seed, jobs=jobs
    ):
        result = runner(**kwargs)
    total = time.perf_counter() - start
    obs_metrics.counter("experiments.run").inc()
    if collector.enabled:
        stage_totals: dict[str, float] = {}
        for sp in collector.spans()[before:]:
            stage_totals[sp.name] = (
                stage_totals.get(sp.name, 0.0) + sp.duration_s
            )
        stage_totals.pop("experiment." + experiment_id, None)
        for name in sorted(stage_totals):
            result.timings[name] = stage_totals[name]
    result.timings["total_s"] = total
    quality = get_quality()
    if quality.enabled:
        result.quality = quality.report()
        result.quality.publish_metrics()
    return result
