"""Table 2 and Figures 4-5: BST validation on the MBA panels."""

from __future__ import annotations

import numpy as np

from repro.core.assignment import accuracy_report
from repro.core.bst import BSTModel
from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.helpers import kde_peak_summary
from repro.market.isps import CITY_IDS, state_catalog
from repro.pipeline.report import format_table
from repro.vendors.mba import MBA_UNITS_PER_STATE

__all__ = ["run_fig3", "run_tab2", "run_fig4", "run_fig5"]


def run_fig3(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Figure 3: the BST methodology overview, rendered as text.

    The paper's Figure 3 is a diagram of the two-stage pipeline; here
    it is generated from the implementation itself
    (:meth:`BSTModel.describe`), for each studied catalog, so the
    description can never drift from the code.
    """
    sections = {}
    metrics: dict[str, float] = {}
    for city in CITY_IDS:
        catalog = state_catalog(city)
        model = BSTModel(catalog)
        sections[f"State-{city}"] = model.describe()
        metrics[f"n_groups_{city}"] = float(
            len(catalog.upload_groups())
        )
    return ExperimentResult(
        experiment_id="fig3",
        title="BST methodology overview (per catalog)",
        sections=sections,
        metrics=metrics,
        paper_values={"n_groups_A": 4.0},
    )

_PAPER_TAB2 = {"A": 0.9933, "B": 0.9819, "C": 0.9684, "D": 0.9910}


def run_tab2(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Table 2: BST upload-group accuracy on each state's MBA panel."""
    rows = []
    metrics: dict[str, float] = {}
    for state in CITY_IDS:
        mba = data.mba_dataset(state, scale, seed)
        model = BSTModel(state_catalog(state))
        result = model.fit(mba["download_mbps"], mba["upload_mbps"])
        report = accuracy_report(result, mba["tier"])
        rows.append(
            [
                state,
                state_catalog(state).isp_name,
                MBA_UNITS_PER_STATE[state],
                len(mba),
                f"{100 * report.upload_group_accuracy:.2f}%",
                f"{100 * _PAPER_TAB2[state]:.2f}%",
            ]
        )
        metrics[f"upload_accuracy_{state}"] = report.upload_group_accuracy
        metrics[f"tier_accuracy_{state}"] = report.tier_accuracy
    return ExperimentResult(
        experiment_id="tab2",
        title="BST upload-group accuracy on the MBA panels",
        sections={
            "accuracy": format_table(
                rows,
                ["state", "isp", "units", "n", "accuracy", "paper"],
            )
        },
        metrics=metrics,
        paper_values={
            f"upload_accuracy_{s}": v for s, v in _PAPER_TAB2.items()
        },
        notes="Paper reports >96% in every state; two states >99%.",
    )


def run_fig4(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 4: KDE of MBA State-A upload speeds.

    Four density peaks should form near ISP-A's offered upload speeds
    (5, 10, 15, 35 Mbps); the paper's fitted cluster means were 5.87,
    11.55, 17.57 and 38.62 Mbps.
    """
    mba = data.mba_dataset("A", scale, seed)
    uploads = np.asarray(mba["upload_mbps"], dtype=float)
    uploads = uploads[np.isfinite(uploads)]
    locations, heights = kde_peak_summary(uploads)
    catalog = state_catalog("A")
    model = BSTModel(catalog)
    fit, _ = model.fit_upload_stage(uploads)
    rows = [
        [
            g.tier_label,
            g.upload_mbps,
            "n/a" if np.isnan(m) else round(float(m), 2),
        ]
        for g, m in zip(fit.groups, fit.cluster_means)
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="MBA State-A upload speed density and cluster means",
        sections={
            "KDE peaks (Mbps @ density)": format_table(
                [[round(loc, 2), round(h, 4)] for loc, h in zip(
                    locations, heights
                )],
                ["location", "height"],
            ),
            "fitted upload clusters": format_table(
                rows, ["group", "offered", "fitted mean"]
            ),
        },
        metrics={
            "n_peaks": float(len(locations)),
            **{
                f"cluster_mean_{g.tier_label}": float(m)
                for g, m in zip(fit.groups, fit.cluster_means)
                if not np.isnan(m)
            },
        },
        paper_values={
            "n_peaks": 4.0,
            "cluster_mean_Tier 2-3": 5.87,
            "cluster_mean_Tier 4": 11.55,
            "cluster_mean_Tier 5": 17.57,
            "cluster_mean_Tier 6": 38.62,
        },
    )


_PAPER_FIG5_MEANS = {
    # Upload group label -> paper's download cluster means (Mbps).
    "Tier 2-3": (110.89, 231.69),
    "Tier 4": (333.48, 335.15, 400.37, 463.31),
    "Tier 5": (269.98, 358.06, 705.35),
    "Tier 6": (892.05,),
}


def run_fig5(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 5: download clusters within each MBA State-A upload group."""
    mba = data.mba_dataset("A", scale, seed)
    model = BSTModel(state_catalog("A"))
    result = model.fit(mba["download_mbps"], mba["upload_mbps"])
    rows = []
    metrics: dict[str, float] = {}
    for gi, stage in sorted(result.download_stages.items()):
        label = result.upload_stage.groups[gi].tier_label
        means = ", ".join(f"{m:.1f}" for m in stage.cluster_means)
        paper = _PAPER_FIG5_MEANS.get(label, ())
        rows.append(
            [
                label,
                stage.n_components,
                means,
                ", ".join(f"{m:g}" for m in paper),
            ]
        )
        metrics[f"top_cluster_mean_{label}"] = float(
            stage.cluster_means.max()
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="MBA State-A download clusters per upload group",
        sections={
            "clusters": format_table(
                rows, ["group", "k", "fitted means", "paper means"]
            )
        },
        metrics=metrics,
        paper_values={
            "top_cluster_mean_Tier 2-3": 231.69,
            "top_cluster_mean_Tier 4": 463.31,
            "top_cluster_mean_Tier 5": 705.35,
            "top_cluster_mean_Tier 6": 892.05,
        },
        notes=(
            "Key shape: tiers 2-3 measure above their advertised rate "
            "(over-provisioning); the gigabit tier measures well below "
            "1200 Mbps (saturation shortfall)."
        ),
    )
