"""Figure 13: Ookla vs M-Lab within matched subscription tiers."""

from __future__ import annotations

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.pipeline.report import format_table
from repro.pipeline.vendor_compare import compare_vendors

__all__ = ["run_fig13"]

# Paper Section 6.3: M-Lab's median normalised download lags Ookla's by
# roughly these factors per City-A upload group.
_PAPER_LAG = {
    "Tier 1-3": 1.2,
    "Tier 4": 2.0,
    "Tier 5": 1.4,
    "Tier 6": 1.2,
}


def run_fig13(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 13: normalised download per tier, Ookla vs M-Lab (City-A)."""
    ookla = data.ookla_contextualized("A", scale, seed)
    mlab = data.mlab_contextualized("A", scale, seed)
    comparison = compare_vendors(ookla, mlab)
    medians = comparison.medians()
    lags = comparison.lag_factors()
    rows = []
    metrics: dict[str, float] = {}
    for label in comparison.group_labels:
        ookla_med, mlab_med = medians[label]
        rows.append(
            [
                label,
                round(ookla_med, 3),
                round(mlab_med, 3),
                round(lags[label], 2),
                _PAPER_LAG.get(label, float("nan")),
            ]
        )
        metrics[f"lag_{label}"] = lags[label]
        metrics[f"ookla_median_{label}"] = ookla_med
        metrics[f"mlab_median_{label}"] = mlab_med
    return ExperimentResult(
        experiment_id="fig13",
        title="Ookla vs M-Lab normalised download per tier (City-A)",
        sections={
            "comparison": format_table(
                rows,
                ["group", "ookla med", "mlab med", "lag", "paper lag"],
            )
        },
        metrics=metrics,
        paper_values={
            **{f"lag_{label}": lag for label, lag in _PAPER_LAG.items()},
            "ookla_median_Tier 1-3": 1.0,
            "mlab_median_Tier 1-3": 0.83,
        },
        notes=(
            "M-Lab (single TCP flow) must lag Ookla (multi-flow) in every "
            "tier, by up to ~2x."
        ),
    )
