"""Figures 11 and 12: time-of-day effects."""

from __future__ import annotations

import numpy as np

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.pipeline.report import format_table
from repro.pipeline.timeofday import (
    TIME_BINS,
    normalized_speed_by_bin,
    test_share_by_bin,
)
from repro.stats.descriptive import median

__all__ = ["run_fig11", "run_fig12"]


def run_fig11(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 11: percentage of tests per 6-hour bin per tier group.

    The fewest tests run overnight (00-06) and the distribution is
    similar across subscription tiers.
    """
    ctx = data.ookla_contextualized("A", scale, seed)
    shares = test_share_by_bin(ctx.table)
    rows = []
    metrics: dict[str, float] = {}
    for group, bins in shares.items():
        rows.append([group, *(round(bins[b], 1) for b in TIME_BINS)])
        for time_bin in TIME_BINS:
            metrics[f"{group}|{time_bin}"] = bins[time_bin]
    overnight = [bins["00-06"] for bins in shares.values()]
    metrics["max_overnight_share"] = max(overnight)
    return ExperimentResult(
        experiment_id="fig11",
        title="Test share per time bin per tier group",
        sections={
            "% of tests": format_table(rows, ["group", *TIME_BINS]),
        },
        metrics=metrics,
        paper_values={"max_overnight_share": 15.0},
        notes="Overnight (00-06) must be the smallest bin for every tier.",
    )


def run_fig12(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 12: normalised download per time bin, Tiers 4 and 5.

    The paper's conclusion: the hour barely matters, with a mild
    overnight advantage (Tier 4 iOS medians 0.53 / 0.46 / 0.45 / 0.46).
    """
    ctx = data.ookla_contextualized("A", scale, seed)
    rows = []
    metrics: dict[str, float] = {}
    for group in ("Tier 4", "Tier 5"):
        by_bin = normalized_speed_by_bin(ctx.table, group_label=group)
        medians = {b: median(v) for b, v in by_bin.items()}
        rows.append([group, *(round(medians[b], 3) for b in TIME_BINS)])
        for time_bin in TIME_BINS:
            metrics[f"{group}|{time_bin}|median"] = medians[time_bin]
        day_meds = [medians[b] for b in TIME_BINS[1:]]
        metrics[f"{group}|overnight_advantage"] = (
            medians["00-06"] / float(np.mean(day_meds))
            if np.mean(day_meds) > 0
            else float("nan")
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Normalised download speed per time bin (Tiers 4-5)",
        sections={
            "medians": format_table(rows, ["group", *TIME_BINS]),
        },
        metrics=metrics,
        paper_values={
            "Tier 4|00-06|median": 0.53,
            "Tier 4|06-12|median": 0.46,
            "Tier 4|12-18|median": 0.45,
            "Tier 4|18-24|median": 0.46,
            "Tier 5|overnight_advantage": 1.11,
        },
        notes="Overnight advantage should be mild (~10-20%), not dominant.",
    )
