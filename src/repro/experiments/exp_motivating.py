"""Figure 1 and Table 1: the motivating example and dataset inventory."""

from __future__ import annotations

import numpy as np

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.experiments.helpers import cdf_table
from repro.market.isps import CITY_IDS, city_catalog
from repro.pipeline.report import format_table
from repro.stats.descriptive import median

__all__ = ["run_fig1", "run_tab1"]


def run_fig1(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 1: raw vs contextualised City-A download CDFs.

    The paper contrasts the uncontextualised City-A distribution (median
    ~115 Mbps) with Tier 1 (median 19.22), Tier 6, Tier 6 restricted to
    unbottlenecked Android tests, and Tier 6 over Ethernet.
    """
    ctx = data.ookla_contextualized("A", scale, seed)
    table = ctx.table
    downloads = np.asarray(table["download_mbps"], dtype=float)

    tier1 = ctx.rows_for_tier(1)
    tier6 = ctx.rows_for_tier(6)
    band = np.asarray(tier6["wifi_band_ghz"], dtype=float)
    rssi = np.asarray(tier6["rssi_dbm"], dtype=float)
    memory = np.asarray(tier6["memory_gb"], dtype=float)
    android_best = tier6.filter(
        (np.asarray(tier6["platform"]) == "android")
        & (band == 5.0)
        & (rssi > -50.0)
        & (memory > 2.0)
    )
    tier6_ethernet = tier6.filter(
        np.asarray(tier6["access"]) == "ethernet"
    )

    series = {
        "Uncontextualized": downloads,
        "Tier 1 (25 Mbps)": np.asarray(tier1["download_mbps"], dtype=float),
        "Tier 6 (1.2 Gbps)": np.asarray(tier6["download_mbps"], dtype=float),
        "Tier 6 Android best": np.asarray(
            android_best["download_mbps"], dtype=float
        ),
        "Tier 6 Ethernet": np.asarray(
            tier6_ethernet["download_mbps"], dtype=float
        ),
    }
    medians = {label: median(vals) for label, vals in series.items()}
    points = [0, 25, 50, 100, 200, 400, 600, 800, 1000, 1200, 1500]
    cdf_rows = cdf_table(series, points)

    return ExperimentResult(
        experiment_id="fig1",
        title="Motivating example: contextualised City-A download CDFs",
        sections={
            "medians (Mbps)": format_table(
                [[label, len(vals), med] for (label, vals), med in zip(
                    series.items(), medians.values()
                )],
                ["series", "n", "median"],
            ),
            "CDF": format_table(
                cdf_rows, ["Mbps", *series.keys()]
            ),
        },
        metrics={
            "city_median_mbps": medians["Uncontextualized"],
            "tier1_median_mbps": medians["Tier 1 (25 Mbps)"],
            "tier6_median_mbps": medians["Tier 6 (1.2 Gbps)"],
            "tier6_best_median_mbps": medians["Tier 6 Android best"],
            "tier6_ethernet_median_mbps": medians["Tier 6 Ethernet"],
        },
        paper_values={
            "city_median_mbps": 115.0,
            "tier1_median_mbps": 19.22,
            # Derived from the factors in Section 2: Tier 6 ~4x the city
            # median, Tier 6 Ethernet ~7x, Android-best ~4x.
            "tier6_median_mbps": 460.0,
            "tier6_best_median_mbps": 450.0,
            "tier6_ethernet_median_mbps": 790.0,
        },
        notes=(
            "Ordering must hold: Tier 1 << city median << Tier 6 variants,"
            " with Ethernet the fastest."
        ),
    )


def run_tab1(scale: Scale = Scale.SMALL, seed: int = 0) -> ExperimentResult:
    """Table 1: measurement counts per city and dataset.

    The simulators are scale-parameterised, so this reports the generated
    counts next to the paper's (in thousands) to document the sampling
    ratio in effect.
    """
    paper_counts = {
        "A": (214, 113, 25.9),
        "B": (205, 376, 14.9),
        "C": (128, 64, 10.9),
        "D": (198, 166, 8.9),
    }
    rows = []
    metrics: dict[str, float] = {}
    for city in CITY_IDS:
        ookla_n = len(data.ookla_dataset(city, scale, seed))
        mlab_n = len(data.mlab_raw_dataset(city, scale, seed))
        mba_n = len(data.mba_dataset(city, scale, seed))
        paper = paper_counts[city]
        rows.append(
            [
                city,
                city_catalog(city).isp_name,
                ookla_n,
                f"{paper[0]}k",
                mlab_n,
                f"{paper[1]}k",
                mba_n,
                f"{paper[2]}k",
            ]
        )
        metrics[f"ookla_{city}"] = float(ookla_n)
        metrics[f"mlab_{city}"] = float(mlab_n)
        metrics[f"mba_{city}"] = float(mba_n)
    return ExperimentResult(
        experiment_id="tab1",
        title="Dataset inventory per city",
        sections={
            "counts": format_table(
                rows,
                [
                    "city",
                    "isp",
                    "ookla(sim)",
                    "ookla(paper)",
                    "mlab(sim)",
                    "mlab(paper)",
                    "mba(sim)",
                    "mba(paper)",
                ],
            )
        },
        metrics=metrics,
        notes="Simulated counts scale with the harness Scale preset.",
    )
