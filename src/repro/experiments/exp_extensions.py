"""Extension experiments beyond the paper's figures.

Three analyses the paper motivates but leaves out of scope:

- ``ext-modem`` -- the cable modem's DOCSIS generation as a hidden
  premium-tier bottleneck (Section 8: modem make/model is "likely also
  essential" context).
- ``ext-geolocation`` -- quantifying the Section 3.4 localisation
  claim: GPS-truncated coordinates can attribute tests to a census
  block, IP geolocation cannot.
- ``ext-metadata`` -- the Section 8 recommendations engine: audit each
  vendor's schema for the recommended context fields.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.market.census import CensusGrid
from repro.market.geo import GeolocationModel, block_attribution_accuracy
from repro.market.isps import city_catalog
from repro.market.population import Household, Subscriber
from repro.netsim.path import WIRED_PANEL_PROFILE, PathSimulator
from repro.pipeline.metadata import audit_metadata, recommend
from repro.pipeline.report import format_table

__all__ = [
    "run_ext_modem",
    "run_ext_geolocation",
    "run_ext_metadata",
    "run_ext_debias",
    "run_ext_latency",
    "run_ext_paired_vendors",
    "run_ablation_transfer",
]


def run_ext_modem(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Premium-tier throughput with and without modem-generation modelling.

    Wired gigabit-plan tests are simulated twice: once with the default
    path model and once with the household's DOCSIS modem as an extra
    ceiling.  The installed-base tail of DOCSIS 3.0 8x4 devices caps a
    visible share of tests near 343 Mbps.
    """
    plan = city_catalog("A").plan_for_tier(6)
    n = {"small": 300, "medium": 1200, "large": 4000}[scale.value]
    results: dict[bool, np.ndarray] = {}
    for modems in (False, True):
        sim = PathSimulator(seed=seed, model_modems=modems)
        rng = np.random.default_rng(seed + 5)
        speeds = []
        for i in range(n):
            household = Household(
                f"ext-modem-h{i}", "A", 6, plan, -40.0, 5.0
            )
            user = Subscriber(
                f"ext-modem-u{i}", household, "desktop-ethernet",
                "ethernet", 16.0, 1,
            )
            speeds.append(
                sim.run_test(user, WIRED_PANEL_PROFILE, 3, rng).download_mbps
            )
        results[modems] = np.asarray(speeds)
    rows = []
    metrics: dict[str, float] = {}
    for modems, speeds in results.items():
        label = "with modems" if modems else "baseline"
        capped = float(np.mean(speeds < 400.0))
        rows.append(
            [
                label,
                round(float(np.median(speeds)), 1),
                round(capped, 3),
            ]
        )
        metrics[f"median_{'modem' if modems else 'base'}"] = float(
            np.median(speeds)
        )
        metrics[f"capped_share_{'modem' if modems else 'base'}"] = capped
    return ExperimentResult(
        experiment_id="ext-modem",
        title="DOCSIS modem generation as a premium-tier bottleneck",
        sections={
            "gigabit-plan wired tests": format_table(
                rows, ["model", "median dl (Mbps)", "share < 400 Mbps"]
            )
        },
        metrics=metrics,
        notes=(
            "An aged modem silently caps a 1.2 Gbps plan near 343 Mbps "
            "-- context the paper recommends collecting but could not."
        ),
    )


def run_ext_geolocation(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Census-block attribution accuracy per localisation channel."""
    grid = CensusGrid("A", rows=12, cols=12, seed=seed)
    tests = {"small": 3, "medium": 8, "large": 20}[scale.value]
    gps = block_attribution_accuracy(
        grid, GeolocationModel.gps_truncated(),
        tests_per_block=tests, seed=seed,
    )
    ip = block_attribution_accuracy(
        grid, GeolocationModel.ip_geolocation(),
        tests_per_block=tests, seed=seed,
    )
    rows = [
        ["Ookla GPS (3-decimal truncation, ~111 m)", round(gps, 3)],
        ["M-Lab IP geolocation (~12 km median)", round(ip, 3)],
    ]
    return ExperimentResult(
        experiment_id="ext-geolocation",
        title="Census-block attribution accuracy by localisation channel",
        sections={
            "attribution accuracy (250 m blocks)": format_table(
                rows, ["channel", "accuracy"]
            )
        },
        metrics={"gps_accuracy": gps, "ip_accuracy": ip},
        notes=(
            "Quantifies Section 3.4: truncated GPS localises to the "
            "block most of the time; IP geolocation essentially never "
            "does, so neither channel identifies a residence."
        ),
    )


def run_ext_paired_vendors(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Per-household Ookla/M-Lab gap with everything else held fixed.

    The strongest form of the Section 6.3 comparison, possible only in
    simulation: the *same* households run both vendors' tests in the
    same hour.  The per-household download ratio isolates the pure
    methodology effect (flow count, ramp handling, server distance).
    """
    from repro.vendors.paired import generate_paired_tests

    n_users = {"small": 1200, "medium": 5000, "large": 20000}[scale.value]
    paired = generate_paired_tests("A", n_users, seed=seed)
    ookla = np.asarray(paired["ookla_download_mbps"], dtype=float)
    mlab = np.asarray(paired["mlab_download_mbps"], dtype=float)
    tiers = np.asarray(paired["true_tier"], dtype=int)
    ratio = ookla / np.maximum(mlab, 1e-9)
    rows = []
    metrics: dict[str, float] = {}
    groups = {
        "Tier 1-3": tiers <= 3,
        "Tier 4": tiers == 4,
        "Tier 5": tiers == 5,
        "Tier 6": tiers == 6,
    }
    for label, mask in groups.items():
        if not mask.any():
            continue
        med = float(np.median(ratio[mask]))
        rows.append(
            [
                label,
                int(mask.sum()),
                round(med, 2),
                round(float(np.mean(ratio[mask] > 1.0)), 3),
            ]
        )
        metrics[f"paired_lag_{label}"] = med
        metrics[f"ookla_wins_{label}"] = float(
            np.mean(ratio[mask] > 1.0)
        )
    metrics["overall_paired_lag"] = float(np.median(ratio))
    return ExperimentResult(
        experiment_id="ext-paired-vendors",
        title="Per-household vendor gap (paired tests, same household)",
        sections={
            "ookla/mlab download ratio": format_table(
                rows,
                ["tier group", "households", "median ratio",
                 "ookla wins"],
            )
        },
        metrics=metrics,
        notes=(
            "With household, plan, WiFi and hour held fixed, Ookla's "
            "multi-flow test out-measures NDT in most homes and by a "
            "growing factor at higher tiers -- the population-matched "
            "Figure 13 gap is methodology, not sampling."
        ),
    )


def run_ext_latency(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Latency by access type and WiFi band (the QoS side of Figure 9).

    Ookla records latency with every test; prior work cited by the
    paper ([41], [45]) shows the WiFi hop -- and especially the crowded
    2.4 GHz band -- inflates it.
    """
    from repro.pipeline.qos import latency_by_access, latency_by_band

    ctx = data.ookla_contextualized("A", scale, seed)
    access = latency_by_access(ctx.table)
    band = latency_by_band(ctx.table)
    rows = []
    metrics: dict[str, float] = {}
    for comparison in (access, band):
        for label, values in comparison.groups.items():
            med = float(np.median(values)) if values.size else float("nan")
            rows.append(
                [comparison.factor, label, len(values), round(med, 1)]
            )
            metrics[f"{label}_median_ms"] = med
    return ExperimentResult(
        experiment_id="ext-latency",
        title="Latency by access type and WiFi band",
        sections={
            "median RTT (ms)": format_table(
                rows, ["factor", "group", "n", "median"]
            )
        },
        metrics=metrics,
        notes="WiFi > Ethernet, and 2.4 GHz > 5 GHz, in median latency.",
    )


def run_ext_debias(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Raw vs tier-rebalanced city medians (the Section 5.1 warning).

    The raw city median describes the lower tiers because they dominate
    the sample; reweighting each tier to the MBA panel's subscription
    mix (or a uniform mix) shows how much the skew drags the aggregate.
    """
    from repro.pipeline.debias import debiased_summary

    ctx = data.ookla_contextualized("A", scale, seed)
    uniform = debiased_summary(ctx.table)
    # Target the State-A MBA panel's subscription mix (Section 4.3
    # counts), which is the best available census of who buys what.
    mba_mix = {2: 0.32, 3: 0.29, 4: 0.16, 5: 0.095, 6: 0.135}
    panel = debiased_summary(ctx.table, target_shares=mba_mix)
    rows = [
        ["raw sample", round(uniform["raw_median"], 1)],
        ["uniform tier mix", round(uniform["debiased_median"], 1)],
        ["MBA panel mix", round(panel["debiased_median"], 1)],
    ]
    return ExperimentResult(
        experiment_id="ext-debias",
        title="Raw vs tier-rebalanced City-A download median",
        sections={
            "median download (Mbps)": format_table(
                rows, ["weighting", "median"]
            )
        },
        metrics={
            "raw_median": uniform["raw_median"],
            "uniform_debiased_median": uniform["debiased_median"],
            "panel_debiased_median": panel["debiased_median"],
        },
        notes=(
            "Both rebalancings raise the estimated city median above "
            "the raw sample's -- the low-tier sampling skew quantified."
        ),
    )


def run_ablation_transfer(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Scalar efficiency factors vs the time-stepped transfer model.

    The path simulator folds transfer dynamics into
    ``saturation_efficiency x methodology_efficiency``.  Here the same
    quantities are *derived* from the fluid slow-start/congestion-
    avoidance model of :mod:`repro.netsim.transfer`, per capacity and
    per vendor methodology, and compared.
    """
    from repro.netsim.path import (
        MULTI_FLOW_PROFILE,
        SINGLE_FLOW_NDT_PROFILE,
    )
    from repro.netsim.tcp import saturation_efficiency
    from repro.netsim.transfer import derived_methodology_efficiency

    n_runs = {"small": 3, "medium": 6, "large": 12}[scale.value]
    rows = []
    metrics: dict[str, float] = {}
    for capacity in (100.0, 400.0, 1200.0):
        scalar_multi = saturation_efficiency(capacity)
        scalar_single = (
            saturation_efficiency(capacity)
            * SINGLE_FLOW_NDT_PROFILE.methodology_efficiency
        )
        dynamic_multi = derived_methodology_efficiency(
            capacity,
            n_flows=MULTI_FLOW_PROFILE.n_flows,
            duration_s=15.0,
            discard_ramp=True,
            n_runs=n_runs,
            seed=seed,
        )
        dynamic_single = derived_methodology_efficiency(
            capacity,
            n_flows=1,
            duration_s=10.0,
            discard_ramp=False,
            n_runs=n_runs,
            seed=seed,
        )
        rows.append(
            [
                f"{capacity:g}",
                round(scalar_multi, 3),
                round(dynamic_multi, 3),
                round(scalar_single, 3),
                round(dynamic_single, 3),
            ]
        )
        metrics[f"scalar_multi_{capacity:g}"] = scalar_multi
        metrics[f"dynamic_multi_{capacity:g}"] = dynamic_multi
        metrics[f"scalar_single_{capacity:g}"] = scalar_single
        metrics[f"dynamic_single_{capacity:g}"] = dynamic_single
    return ExperimentResult(
        experiment_id="ablation-transfer",
        title="Scalar efficiency factors vs time-stepped transfer model",
        sections={
            "reported/capacity ratio": format_table(
                rows,
                [
                    "capacity (Mbps)",
                    "scalar multi",
                    "dynamic multi",
                    "scalar single",
                    "dynamic single",
                ],
            )
        },
        metrics=metrics,
        notes=(
            "Both models agree on the shape: single-flow efficiency "
            "collapses with capacity while multi-flow stays high.  The "
            "scalar model is more pessimistic at gigabit rates because "
            "it also absorbs receive-window and server-side limits that "
            "the fluid model does not represent."
        ),
    )


def run_ext_metadata(
    scale: Scale = Scale.MEDIUM, seed: int = 0
) -> ExperimentResult:
    """Section 8 recommendations, applied to each vendor's schema."""
    datasets = {
        "Ookla (contextualised)": data.ookla_contextualized(
            "A", scale, seed
        ).table,
        "Ookla (raw)": data.ookla_dataset("A", scale, seed),
        "M-Lab (joined)": data.mlab_joined_dataset("A", scale, seed),
        "MBA": data.mba_dataset("A", scale, seed),
    }
    rows = []
    metrics: dict[str, float] = {}
    sections: dict[str, str] = {}
    for label, table in datasets.items():
        audit = audit_metadata(table)
        rows.append(
            [
                label,
                round(audit.interpretability, 3),
                len(audit.missing_fields()),
            ]
        )
        metrics[f"interpretability|{label}"] = audit.interpretability
    sections["interpretability per dataset"] = format_table(
        rows, ["dataset", "score", "missing fields"]
    )
    mlab_audit = audit_metadata(
        data.mlab_joined_dataset("A", scale, seed)
    )
    sections["recommendations for M-Lab"] = "\n".join(
        f"{i}. {text}"
        for i, text in enumerate(recommend(mlab_audit), start=1)
    )
    return ExperimentResult(
        experiment_id="ext-metadata",
        title="Metadata audit: which context each vendor publishes",
        sections=sections,
        metrics=metrics,
        notes=(
            "The contextualised Ookla table scores highest; raw NDT "
            "data carries almost none of the recommended context."
        ),
    )
