"""Figure 2 and Figure 8: consistency of speeds and of BST assignments."""

from __future__ import annotations

import numpy as np

from repro.core.consistency import alpha_values, per_user_consistency_factors
from repro.experiments import data
from repro.experiments.base import ExperimentResult, Scale
from repro.pipeline.report import format_table
from repro.stats.descriptive import median, quantiles

__all__ = ["run_fig2", "run_fig8"]


def run_fig2(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 2: consistency factor CDF for iOS users with >= 5 tests.

    The paper reports a median download consistency factor of 0.58 versus
    0.87 for upload -- the observation that justifies clustering uploads
    first.
    """
    ookla = data.ookla_dataset("A", scale, seed)
    ios = ookla.filter(ookla["platform"] == "ios")
    download_cf = per_user_consistency_factors(ios, "download_mbps")
    upload_cf = per_user_consistency_factors(ios, "upload_mbps")
    dl = np.asarray(download_cf["consistency_factor"], dtype=float)
    ul = np.asarray(upload_cf["consistency_factor"], dtype=float)
    rows = []
    for q, name in ((0.25, "p25"), (0.5, "median"), (0.75, "p75")):
        rows.append(
            [
                name,
                round(float(np.quantile(dl, q)), 3) if dl.size else "-",
                round(float(np.quantile(ul, q)), 3) if ul.size else "-",
            ]
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="Per-user consistency factor (iOS, >=5 tests)",
        sections={
            "quantiles": format_table(
                rows, ["quantile", "download", "upload"]
            ),
            "users": f"{len(download_cf)} qualifying users",
        },
        metrics={
            "median_download_cf": median(dl),
            "median_upload_cf": median(ul),
            "n_users": float(len(download_cf)),
        },
        paper_values={
            "median_download_cf": 0.58,
            "median_upload_cf": 0.87,
        },
        notes="Upload must be markedly more consistent than download.",
    )


def run_fig8(scale: Scale = Scale.MEDIUM, seed: int = 0) -> ExperimentResult:
    """Figure 8: CDF of alpha (per-user/month max single-tier share).

    The paper's median alpha is 1: for most users, every test in a month
    is assigned to the same tier.
    """
    ctx = data.ookla_contextualized("A", scale, seed)
    native = ctx.table.filter(ctx.table["origin"] == "native")
    alphas = alpha_values(native, tier_column="bst_tier")
    values = np.asarray(alphas["alpha"], dtype=float)
    qs = quantiles(values, (0.1, 0.25, 0.5, 0.75, 0.9)) if values.size else {}
    rows = [[f"p{int(q * 100)}", round(v, 3)] for q, v in qs.items()]
    frac_stable = (
        float(np.mean(values == 1.0)) if values.size else float("nan")
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Alpha: stability of BST assignment per user-month",
        sections={
            "alpha quantiles": format_table(rows, ["quantile", "alpha"]),
            "user-months": f"{len(values)} qualifying user-months",
        },
        metrics={
            "median_alpha": median(values),
            "fraction_alpha_1": frac_stable,
            "n_user_months": float(len(values)),
        },
        paper_values={"median_alpha": 1.0},
        notes="Alpha should skew hard toward 1 (median exactly 1).",
    )
