"""RTT and loss sampling for simulated speed tests.

Speed test vendors route clients to nearby servers (Ookla has >16k,
M-Lab >500 -- Section 3), so base RTTs are short but variable.  The WiFi
hop adds both delay and loss; both feed the Mathis term of the TCP model,
which is what separates single-flow NDT from multi-flow Ookla results at
higher tiers (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Samples per-test RTT (ms) and packet loss probability.

    Parameters are log-space: RTT is lognormal around ``median_rtt_ms``
    with multiplicative spread ``rtt_sigma``; loss is lognormal around
    ``median_loss``.  WiFi adds a fixed extra delay range plus extra loss.
    """

    median_rtt_ms: float = 12.0
    rtt_sigma: float = 0.35
    median_loss: float = 1.2e-5
    loss_sigma: float = 0.9
    wifi_extra_rtt_range_ms: tuple[float, float] = (2.0, 10.0)
    # The crowded 2.4 GHz channel queues longer (cf. Sui et al. [45]).
    wifi_24ghz_extra_rtt_range_ms: tuple[float, float] = (4.0, 18.0)
    wifi_extra_loss: float = 2e-5

    def __post_init__(self):
        if self.median_rtt_ms <= 0:
            raise ValueError("median RTT must be positive")
        if not 0 < self.median_loss < 1:
            raise ValueError("median loss must be in (0, 1)")

    def sample_rtt_ms(
        self,
        rng: np.random.Generator,
        on_wifi: bool = False,
        band_ghz: float | None = None,
    ) -> float:
        """One test's RTT to the chosen measurement server.

        ``band_ghz`` selects the WiFi extra-delay range (2.4 GHz queues
        longer); it is ignored for wired tests.
        """
        rtt = float(
            np.exp(rng.normal(np.log(self.median_rtt_ms), self.rtt_sigma))
        )
        if on_wifi:
            if band_ghz == 2.4:
                lo, hi = self.wifi_24ghz_extra_rtt_range_ms
            else:
                lo, hi = self.wifi_extra_rtt_range_ms
            rtt += float(rng.uniform(lo, hi))
        return max(rtt, 1.0)

    def sample_loss(
        self, rng: np.random.Generator, on_wifi: bool = False
    ) -> float:
        """One test's path loss probability."""
        loss = float(
            np.exp(rng.normal(np.log(self.median_loss), self.loss_sigma))
        )
        if on_wifi:
            loss += float(rng.uniform(0.0, self.wifi_extra_loss))
        return float(min(max(loss, 1e-7), 0.05))
