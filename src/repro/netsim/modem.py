"""Cable modem model: DOCSIS channel bonding as a throughput ceiling.

The paper's recommendations note that "the make and model of the cable
modem ... are likely also essential" context but leave them out of
scope (Section 8).  This module implements that extension: a DOCSIS
modem bonds a number of downstream/upstream channels, and an older
modem on a premium plan becomes the hidden bottleneck -- a DOCSIS 3.0
8x4 device tops out near 343 Mbps and silently caps a 1.2 Gbps tier.

:class:`ModemProfile` provides the standard generations;
``PathSimulator`` accepts an optional per-household modem sampler so
the effect can be switched on for the ablation benchmark without
disturbing the calibrated defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ModemProfile",
    "DOCSIS_30_8x4",
    "DOCSIS_30_16x4",
    "DOCSIS_30_32x8",
    "DOCSIS_31",
    "MODEM_GENERATIONS",
    "sample_modem",
]

# Per-channel data rates: DOCSIS 3.0 SC-QAM downstream ~42.88 Mbps
# (256-QAM, 6 MHz), upstream ~30.72 Mbps (64-QAM, 6.4 MHz); DOCSIS 3.1
# OFDM raises the aggregate dramatically.
_DOWNSTREAM_PER_CHANNEL = 42.88
_UPSTREAM_PER_CHANNEL = 30.72


@dataclass(frozen=True)
class ModemProfile:
    """One modem generation: bonded channels and the resulting ceilings."""

    name: str
    downstream_channels: int
    upstream_channels: int
    ofdm: bool = False  # DOCSIS 3.1 OFDM block present

    def __post_init__(self):
        if self.downstream_channels < 1 or self.upstream_channels < 1:
            raise ValueError("a modem bonds at least one channel each way")

    @property
    def max_download_mbps(self) -> float:
        base = self.downstream_channels * _DOWNSTREAM_PER_CHANNEL
        if self.ofdm:
            # One 96 MHz OFDM block at mid-split carries ~1.9 Gbps on
            # its own; 2.5 Gbps is a typical 3.1 device ceiling.
            return max(base, 2500.0)
        return base

    @property
    def max_upload_mbps(self) -> float:
        base = self.upstream_channels * _UPSTREAM_PER_CHANNEL
        if self.ofdm:
            return max(base, 800.0)
        return base

    def caps_plan(self, plan_download_mbps: float) -> bool:
        """Whether this modem bottlenecks a plan's downstream rate."""
        return self.max_download_mbps < plan_download_mbps


DOCSIS_30_8x4 = ModemProfile("DOCSIS 3.0 8x4", 8, 4)
DOCSIS_30_16x4 = ModemProfile("DOCSIS 3.0 16x4", 16, 4)
DOCSIS_30_32x8 = ModemProfile("DOCSIS 3.0 32x8", 32, 8)
DOCSIS_31 = ModemProfile("DOCSIS 3.1", 32, 8, ofdm=True)

MODEM_GENERATIONS: tuple[ModemProfile, ...] = (
    DOCSIS_30_8x4,
    DOCSIS_30_16x4,
    DOCSIS_30_32x8,
    DOCSIS_31,
)

# Installed-base mix: a visible tail of households still runs old
# CPE (self-purchased modems age in place).
_DEFAULT_MIX = (0.10, 0.20, 0.35, 0.35)


def sample_modem(
    rng: np.random.Generator,
    mix: tuple[float, ...] = _DEFAULT_MIX,
) -> ModemProfile:
    """Draw a modem generation from the installed-base mix."""
    if len(mix) != len(MODEM_GENERATIONS):
        raise ValueError(
            f"mix needs {len(MODEM_GENERATIONS)} entries, got {len(mix)}"
        )
    if abs(sum(mix) - 1.0) > 1e-9:
        raise ValueError("mix must sum to 1")
    index = int(rng.choice(len(MODEM_GENERATIONS), p=np.asarray(mix)))
    return MODEM_GENERATIONS[index]
