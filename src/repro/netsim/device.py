"""Device model: kernel-memory throughput ceiling.

Figure 9d of the paper shows speed tests from Android devices with little
available kernel memory fall far short of their plan: the median
normalised download speed is 0.16 with < 2 GB free versus 0.53 with
> 6 GB.  Mechanistically, a memory-squeezed kernel shrinks TCP
receive-buffer autotuning budgets (and the app competes for pages), so
the achievable window -- and thus ``window / RTT`` -- drops.

The model maps available memory to a throughput ceiling via a smooth
power law calibrated so the Figure 9d bins come out: devices below 2 GB
are sharply capped while devices above ~4 GB are effectively uncapped
relative to residential plan rates.
"""

from __future__ import annotations

__all__ = ["device_memory_cap_mbps", "memory_bin_label"]


def device_memory_cap_mbps(
    memory_gb: float,
    coefficient: float = 70.0,
    exponent: float = 1.35,
) -> float:
    """Throughput ceiling (Mbps) imposed by available kernel memory.

    ``cap = coefficient * memory_gb ** exponent``; with the defaults a
    1 GB device caps near 70 Mbps, a 4 GB device near 450 Mbps, and an
    8 GB device above 1.1 Gbps (effectively uncapped for the plans
    studied).
    """
    if memory_gb <= 0:
        raise ValueError("available memory must be positive")
    return coefficient * memory_gb**exponent


def memory_bin_label(memory_gb: float) -> str:
    """The Figure 9d bin a memory value falls into."""
    if memory_gb <= 0:
        raise ValueError("available memory must be positive")
    if memory_gb < 2.0:
        return "< 2 GB"
    if memory_gb < 4.0:
        return "2 GB - 4 GB"
    if memory_gb < 6.0:
        return "4 GB - 6 GB"
    return "> 6 GB"
