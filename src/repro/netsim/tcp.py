"""TCP throughput model: per-flow limits and multi-flow aggregation.

Two classical per-flow ceilings are modelled:

- the **Mathis model** ``rate = (MSS / RTT) * C / sqrt(p)`` -- the
  congestion-avoidance throughput of a long-lived flow under random loss
  ``p`` (Mathis et al., CCR 1997); and
- the **receive-window limit** ``rate = window / RTT``.

A speed test reports the minimum of the two per flow.  Multi-flow tests
(Ookla runs "multiple TCP connections", Section 3.1) aggregate nearly
linearly until the path capacity binds; single-flow tests (M-Lab's NDT,
Section 3.2) keep the per-flow ceiling, which is why NDT "often
under-reports the connection capacity".

Finally, :func:`saturation_efficiency` models the fixed-duration shortfall:
a 10-15 s test spends a capacity-dependent fraction of its life ramping
up, so gigabit links measure well below capacity even on Ethernet -- the
paper's Section 4.3 observation that the 1200 Mbps MBA tier measures
~892 Mbps ("the limitation of speed test-like measurements in saturating
the available bandwidth in the higher end of the offered plans").
"""

from __future__ import annotations

import math

__all__ = [
    "mathis_throughput_mbps",
    "window_limited_throughput_mbps",
    "flow_throughput_mbps",
    "multi_flow_throughput_mbps",
    "saturation_efficiency",
]

MATHIS_CONSTANT = 1.22  # sqrt(3/2), random-loss variant
DEFAULT_MSS_BYTES = 1460


def mathis_throughput_mbps(
    rtt_ms: float,
    loss_rate: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Mathis-model steady-state throughput of one TCP flow, in Mbps.

    ``loss_rate`` is the packet loss probability; zero loss returns
    ``inf`` (the window limit will bind instead).
    """
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss rate must be in [0, 1)")
    if loss_rate == 0.0:
        return math.inf
    bytes_per_second = (
        mss_bytes / (rtt_ms / 1000.0) * MATHIS_CONSTANT / math.sqrt(loss_rate)
    )
    return bytes_per_second * 8.0 / 1e6


def window_limited_throughput_mbps(
    window_bytes: float,
    rtt_ms: float,
) -> float:
    """Receive-window ceiling of one flow: ``window / RTT`` in Mbps."""
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    if window_bytes <= 0:
        raise ValueError("window must be positive")
    return window_bytes * 8.0 / (rtt_ms / 1000.0) / 1e6


def flow_throughput_mbps(
    rtt_ms: float,
    loss_rate: float,
    window_bytes: float = 4 * 1024 * 1024,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Per-flow throughput: min of the Mathis and window ceilings."""
    return min(
        mathis_throughput_mbps(rtt_ms, loss_rate, mss_bytes),
        window_limited_throughput_mbps(window_bytes, rtt_ms),
    )


def multi_flow_throughput_mbps(
    path_capacity_mbps: float,
    n_flows: int,
    rtt_ms: float,
    loss_rate: float,
    window_bytes: float = 4 * 1024 * 1024,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Aggregate throughput of ``n_flows`` parallel flows on one path.

    Flows add nearly linearly until the path capacity binds; the capacity
    itself is never exceeded.
    """
    if path_capacity_mbps <= 0:
        raise ValueError("path capacity must be positive")
    if n_flows < 1:
        raise ValueError("need at least one flow")
    per_flow = flow_throughput_mbps(rtt_ms, loss_rate, window_bytes, mss_bytes)
    return min(path_capacity_mbps, n_flows * per_flow)


def saturation_efficiency(
    target_mbps: float,
    knee_mbps: float = 1400.0,
    max_deficit: float = 0.35,
    gamma: float = 1.7,
) -> float:
    """Fraction of a target rate a fixed-duration test actually averages.

    Low rates saturate almost immediately (efficiency ~1); near-gigabit
    rates lose a growing share of the test window to ramp-up, bufferbloat
    cycles and receive-window scaling:

    ``efficiency = 1 - max_deficit * (target / knee) ** gamma``

    clamped to ``[1 - max_deficit, 1]``.  With the defaults, a 230 Mbps
    target keeps ~98% and a 1380 Mbps target ~66% -- matching the wired
    MBA means of Section 4.3 (231.7 measured on the 200 Mbps plan,
    892 on the 1200 Mbps plan).
    """
    if target_mbps <= 0:
        raise ValueError("target rate must be positive")
    if not 0.0 <= max_deficit < 1.0:
        raise ValueError("max_deficit must be in [0, 1)")
    deficit = max_deficit * (target_mbps / knee_mbps) ** gamma
    return max(1.0 - max_deficit, 1.0 - min(deficit, max_deficit))
