"""Measurement server pools: how far away is the nearest test server?

Section 3 notes the asymmetry: Ookla operates "over 16k measurement
servers worldwide" while M-Lab has "over 500 well-provisioned servers".
Denser pools put a server closer to the client, shortening the base
RTT -- and since a single-flow test's throughput scales with 1/RTT
(the Mathis term), server density is itself part of the methodology
gap the paper measures in Section 6.3.

The model: servers are spread over a service region; the distance to
the nearest of ``n`` uniformly scattered servers scales like
``region_radius / sqrt(n)``, and RTT adds propagation (~1 ms per
100 km, times a routing-inefficiency factor) to a fixed metro access
delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ServerPool", "OOKLA_POOL", "MLAB_POOL"]

# Effective service region (contiguous-US-scale) and routing constants.
_REGION_RADIUS_KM = 2400.0
_PROPAGATION_MS_PER_100KM = 1.0
_ROUTING_INEFFICIENCY = 1.8  # paths are not great circles
_ACCESS_DELAY_MS = 8.0  # DOCSIS access + home segment floor


@dataclass(frozen=True)
class ServerPool:
    """One vendor's measurement server deployment."""

    name: str
    n_servers: int

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("a pool needs at least one server")

    @property
    def typical_distance_km(self) -> float:
        """Expected distance to the nearest server.

        For ``n`` uniform points in a disc of radius ``R``, the mean
        nearest-neighbour distance from a random client is
        ``R / (2 sqrt(n))``.
        """
        return _REGION_RADIUS_KM / (2.0 * np.sqrt(self.n_servers))

    def sample_distance_km(
        self, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Per-test distances to the chosen server (Rayleigh-ish)."""
        if n < 1:
            raise ValueError("n must be positive")
        scale = self.typical_distance_km / np.sqrt(np.pi / 2.0)
        return rng.rayleigh(scale, size=n)

    def median_rtt_ms(self) -> float:
        """Median RTT implied by the pool's density."""
        distance = self.typical_distance_km
        propagation = (
            distance / 100.0 * _PROPAGATION_MS_PER_100KM
            * _ROUTING_INEFFICIENCY
        )
        return _ACCESS_DELAY_MS + 2.0 * propagation  # round trip

    def latency_model_kwargs(self) -> dict:
        """Keyword overrides for :class:`~repro.netsim.latency
        .LatencyModel` reflecting this pool's density."""
        return {"median_rtt_ms": self.median_rtt_ms()}


# Section 3: the two studied vendors' deployments (US-scale share of
# the global counts).
OOKLA_POOL = ServerPool(name="ookla", n_servers=2500)
MLAB_POOL = ServerPool(name="mlab", n_servers=130)
