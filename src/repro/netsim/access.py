"""Access-network model: plan shaping, over-provisioning, time of day.

Cable ISPs shape each modem to its subscribed rate plus headroom.  The
paper's MBA analysis (Section 4.3) sees this directly: the 100 and
200 Mbps tiers measure ~110.9 and ~231.7 Mbps on wired whiteboxes --
"ISP-A provides performance that surpasses the subscribed download speed
for these subscription tiers" -- so the model over-provisions every plan
by a configurable factor with small per-household spread.

Time of day matters only marginally (Section 6.2): tests during 00-06
local achieve slightly better normalised speeds (e.g. Tier 4 iOS medians
0.53 overnight vs ~0.45-0.46 otherwise).  The model applies a small
daytime utilisation discount to access capacity accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.plans import Plan

__all__ = ["AccessLink", "timeofday_factor", "OVERPROVISION_DOWNLOAD",
           "OVERPROVISION_UPLOAD"]

# Calibrated against the MBA cluster means of Section 4.3 and the upload
# cluster means of Table 3 (e.g. the 35 Mbps tier measures ~40 Mbps).
OVERPROVISION_DOWNLOAD = 1.16
OVERPROVISION_UPLOAD = 1.14

# Daytime (06-24 local) capacity multiplier; overnight is 1.0.  Chosen so
# the overnight advantage is ~10-15% at the median, the paper's "slightly
# better performance recorded for tests conducted during 00-06 hours".
_DAYTIME_FACTOR = 0.90


def timeofday_factor(hour: int, rng: np.random.Generator | None = None) -> float:
    """Access capacity multiplier for a local ``hour`` (0-23).

    Overnight (00-06) the shared segment is idle (factor 1.0); during the
    day a mild utilisation discount applies, with small per-test noise when
    an ``rng`` is provided.
    """
    if not 0 <= hour <= 23:
        raise ValueError(f"hour must be 0-23, got {hour}")
    base = 1.0 if hour < 6 else _DAYTIME_FACTOR
    if rng is None:
        return base
    return float(np.clip(base + rng.normal(0.0, 0.02), 0.6, 1.0))


@dataclass(frozen=True)
class AccessLink:
    """One household's shaped access link.

    The shaped rates are the plan rates times the ISP's over-provisioning
    factor times a per-household installation factor (modem/line quality),
    fixed at construction so repeated tests from one home see the same
    access ceiling -- the stability that makes upload speeds such a good
    tier fingerprint.
    """

    plan: Plan
    household_factor: float = 1.0
    overprovision_download: float = OVERPROVISION_DOWNLOAD
    overprovision_upload: float = OVERPROVISION_UPLOAD

    def __post_init__(self):
        if self.household_factor <= 0:
            raise ValueError("household factor must be positive")
        if self.overprovision_download <= 0 or self.overprovision_upload <= 0:
            raise ValueError("over-provisioning factors must be positive")

    @property
    def download_capacity_mbps(self) -> float:
        return (
            self.plan.download_mbps
            * self.overprovision_download
            * self.household_factor
        )

    @property
    def upload_capacity_mbps(self) -> float:
        return (
            self.plan.upload_mbps
            * self.overprovision_upload
            * self.household_factor
        )

    @classmethod
    def for_household(
        cls,
        plan: Plan,
        rng: np.random.Generator,
        household_sigma: float = 0.03,
    ) -> "AccessLink":
        """Sample a link with per-household installation spread."""
        factor = float(np.clip(rng.normal(1.0, household_sigma), 0.85, 1.15))
        return cls(plan=plan, household_factor=factor)
