"""WiFi link model: PHY rate vs band and RSSI, MAC efficiency, contention.

Section 6.1 of the paper quantifies three WiFi effects on speed tests:

- **Band** (Figure 9b): 2.4 GHz tests achieve a median normalised download
  speed of 0.11 vs 0.40 on 5 GHz -- the 2.4 GHz channel is narrower and
  more congested.
- **RSSI** (Figure 9c): on 5 GHz, the median normalised speed spans
  0.2 (< -70 dBm) to 0.52 (>= -30 dBm).
- Per-test variance: repeated tests by one user disperse widely on WiFi,
  which is why download consistency factors are low (Figure 2).

The model is a standard rate-adaptation abstraction: an RSSI-indexed PHY
rate table per band (802.11n 20 MHz 2x2 for 2.4 GHz, 802.11ac 80 MHz 2x2
for 5 GHz), a MAC-efficiency multiplier (protocol overhead), and a per-test
contention factor for airtime lost to other stations/interference.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "wifi_phy_rate_mbps",
    "wifi_mac_efficiency",
    "wifi_throughput_cap_mbps",
    "sample_contention_factor",
]

# (rssi_dbm, phy_rate_mbps) anchors, best to worst signal.  Rates between
# anchors are linearly interpolated; beyond the ends they clamp.
_PHY_TABLE_5GHZ = (
    (-40.0, 866.0),
    (-50.0, 780.0),
    (-55.0, 650.0),
    (-60.0, 526.0),
    (-65.0, 390.0),
    (-70.0, 260.0),
    (-75.0, 150.0),
    (-80.0, 80.0),
    (-87.0, 25.0),
)
_PHY_TABLE_24GHZ = (
    (-40.0, 144.0),
    (-55.0, 130.0),
    (-65.0, 104.0),
    (-72.0, 57.0),
    (-80.0, 21.0),
    (-88.0, 6.0),
)

# Fraction of PHY rate a single TCP flow family can realise after MAC/PHY
# overhead (preambles, ACKs, aggregation limits).  2.4 GHz is lower: more
# management traffic and legacy protection.
_MAC_EFFICIENCY = {5.0: 0.62, 2.4: 0.55}


def wifi_phy_rate_mbps(band_ghz: float, rssi_dbm: float) -> float:
    """Negotiated PHY rate for a band/RSSI pair, via table interpolation."""
    table = _table_for_band(band_ghz)
    rssis = np.asarray([row[0] for row in table])
    rates = np.asarray([row[1] for row in table])
    # np.interp needs ascending x.
    order = np.argsort(rssis)
    return float(np.interp(rssi_dbm, rssis[order], rates[order]))


def _table_for_band(band_ghz: float):
    if band_ghz == 5.0:
        return _PHY_TABLE_5GHZ
    if band_ghz == 2.4:
        return _PHY_TABLE_24GHZ
    raise ValueError(f"unsupported WiFi band {band_ghz} GHz")


def wifi_mac_efficiency(band_ghz: float) -> float:
    """Fraction of PHY rate available to TCP goodput on a quiet channel."""
    try:
        return _MAC_EFFICIENCY[band_ghz]
    except KeyError:
        raise ValueError(f"unsupported WiFi band {band_ghz} GHz") from None


def sample_contention_factor(band_ghz: float, rng: np.random.Generator) -> float:
    """Airtime share kept by this station for one test.

    2.4 GHz channels overlap with neighbours, microwaves and Bluetooth, so
    contention is both worse on average and more variable.  The factor is
    sampled per *test*, which is what gives repeated WiFi downloads their
    low consistency factor.
    """
    if band_ghz == 5.0:
        return float(rng.uniform(0.45, 0.95))
    if band_ghz == 2.4:
        return float(rng.uniform(0.30, 0.85))
    raise ValueError(f"unsupported WiFi band {band_ghz} GHz")


def wifi_throughput_cap_mbps(
    band_ghz: float,
    rssi_dbm: float,
    contention_factor: float = 1.0,
) -> float:
    """TCP-level throughput ceiling of the WiFi hop for one test."""
    if not 0.0 < contention_factor <= 1.0:
        raise ValueError("contention factor must be in (0, 1]")
    phy = wifi_phy_rate_mbps(band_ghz, rssi_dbm)
    return phy * wifi_mac_efficiency(band_ghz) * contention_factor
