"""Network path simulator: the physics under every simulated speed test.

The paper measures how plan shaping, home WiFi (band, RSSI), device memory,
time of day, and the test's own TCP methodology (single vs multiple flows)
shape reported speeds.  This subpackage models each of those mechanisms:

- :mod:`repro.netsim.tcp` -- per-flow TCP throughput (Mathis model +
  receive-window limit) and the fixed-duration saturation shortfall that
  makes gigabit plans measure below their advertised rate.
- :mod:`repro.netsim.wifi` -- PHY rate vs band and RSSI, MAC efficiency,
  and per-test contention.
- :mod:`repro.netsim.device` -- kernel-memory throughput ceiling.
- :mod:`repro.netsim.access` -- ISP plan shaping with over-provisioning and
  a marginal time-of-day congestion factor.
- :mod:`repro.netsim.latency` -- RTT and loss sampling.
- :mod:`repro.netsim.path` -- end-to-end composition used by the vendor
  simulators.
"""

from repro.netsim.tcp import (
    mathis_throughput_mbps,
    window_limited_throughput_mbps,
    flow_throughput_mbps,
    multi_flow_throughput_mbps,
    saturation_efficiency,
)
from repro.netsim.wifi import (
    wifi_phy_rate_mbps,
    wifi_mac_efficiency,
    wifi_throughput_cap_mbps,
)
from repro.netsim.device import device_memory_cap_mbps
from repro.netsim.access import AccessLink, timeofday_factor
from repro.netsim.latency import LatencyModel
from repro.netsim.path import PathSimulator, TestConditions, FlowProfile

__all__ = [
    "mathis_throughput_mbps",
    "window_limited_throughput_mbps",
    "flow_throughput_mbps",
    "multi_flow_throughput_mbps",
    "saturation_efficiency",
    "wifi_phy_rate_mbps",
    "wifi_mac_efficiency",
    "wifi_throughput_cap_mbps",
    "device_memory_cap_mbps",
    "AccessLink",
    "timeofday_factor",
    "LatencyModel",
    "PathSimulator",
    "TestConditions",
    "FlowProfile",
]
