"""Time-stepped speed test transfer simulation.

The scalar path model (:mod:`repro.netsim.path`) folds the dynamics of a
10-15 second TCP transfer into two factors: a fixed-duration saturation
efficiency and a per-vendor methodology efficiency.  This module
implements the dynamics themselves -- a fluid model of parallel TCP
flows in slow start and congestion avoidance over a fixed-capacity
bottleneck -- so those factors can be *derived* and the design choice
validated (see the ``ablation-transfer`` experiment).

Mechanics per time step (one RTT):

- each flow grows its window: doubling in slow start until the first
  loss or until the bottleneck saturates, then +1 MSS per RTT;
- aggregate demand above the bottleneck capacity is clipped (and the
  overflowing flows multiplicatively back off, beta = 0.7, roughly
  CUBIC-like);
- random loss proportional to ``loss_rate`` also triggers back-off.

A test reports the mean throughput over its measurement window; vendors
differ in whether the slow-start ramp is included (NDT) or discarded
(Ookla-style tests drop the warm-up interval).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TransferResult",
    "simulate_transfer",
    "derived_methodology_efficiency",
]

_MSS_BITS = 1460 * 8
_BETA = 0.7  # multiplicative back-off factor


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer.

    ``samples_mbps`` holds the per-RTT aggregate throughput series;
    ``reported_mbps`` is the vendor-visible number (mean over the
    measurement window); ``ramp_seconds`` is how long the transfer took
    to first reach 95% of its steady rate.
    """

    samples_mbps: np.ndarray
    reported_mbps: float
    ramp_seconds: float
    duration_s: float


def simulate_transfer(
    capacity_mbps: float,
    rtt_ms: float,
    loss_rate: float,
    n_flows: int = 1,
    duration_s: float = 10.0,
    discard_ramp: bool = False,
    initial_window_packets: float = 10.0,
    seed: int | None = 0,
) -> TransferResult:
    """Simulate a fixed-duration test transfer and its reported speed.

    Parameters
    ----------
    capacity_mbps:
        Bottleneck capacity shared by the flows.
    rtt_ms, loss_rate:
        Path round-trip time and random loss probability per packet.
    n_flows:
        Parallel TCP connections (1 for NDT, several for Ookla).
    duration_s:
        Test length.
    discard_ramp:
        Drop the warm-up portion (the first 25% of samples or until the
        aggregate first reaches 90% of its eventual median, whichever is
        shorter) before averaging -- the Ookla-style measurement.
    """
    if capacity_mbps <= 0:
        raise ValueError("capacity must be positive")
    if rtt_ms <= 0:
        raise ValueError("RTT must be positive")
    if not 0 <= loss_rate < 1:
        raise ValueError("loss rate must be in [0, 1)")
    if n_flows < 1:
        raise ValueError("need at least one flow")
    if duration_s <= 0:
        raise ValueError("duration must be positive")

    rng = np.random.default_rng(seed)
    step_s = rtt_ms / 1000.0
    n_steps = max(int(duration_s / step_s), 2)
    windows = np.full(n_flows, initial_window_packets)  # packets
    in_slow_start = np.ones(n_flows, dtype=bool)
    samples = np.empty(n_steps)
    packet_rate_capacity = capacity_mbps * 1e6 / _MSS_BITS  # pkts/s

    for step in range(n_steps):
        demand_pps = windows / step_s  # packets/s if unclipped
        total_demand = demand_pps.sum()
        utilisation = min(total_demand / packet_rate_capacity, 1.0)
        achieved_pps = (
            demand_pps
            if total_demand <= packet_rate_capacity
            else demand_pps * packet_rate_capacity / total_demand
        )
        samples[step] = achieved_pps.sum() * _MSS_BITS / 1e6

        # Loss events: random loss plus congestion loss when saturated.
        packets_sent = achieved_pps * step_s
        loss_prob = 1.0 - np.power(
            1.0 - loss_rate, np.maximum(packets_sent, 0.0)
        )
        congested = total_demand > packet_rate_capacity
        lost = rng.random(n_flows) < loss_prob
        if congested:
            # The most aggressive flows overflow the buffer.
            overflow = rng.random(n_flows) < 0.5 * utilisation
            lost |= overflow

        grew = ~lost
        windows = np.where(
            lost,
            np.maximum(windows * _BETA, 1.0),
            np.where(in_slow_start, windows * 2.0, windows + 1.0),
        )
        in_slow_start &= grew & (total_demand <= packet_rate_capacity)

    if discard_ramp:
        steady = float(np.median(samples[n_steps // 2 :]))
        above = np.flatnonzero(samples >= 0.9 * steady)
        start = int(above[0]) if above.size else n_steps // 4
        start = min(start, n_steps // 4)
        reported = float(np.mean(samples[start:]))
    else:
        reported = float(np.mean(samples))

    steady = float(np.median(samples[n_steps // 2 :]))
    reach = np.flatnonzero(samples >= 0.95 * steady)
    ramp_steps = int(reach[0]) if reach.size else n_steps
    return TransferResult(
        samples_mbps=samples,
        reported_mbps=reported,
        ramp_seconds=ramp_steps * step_s,
        duration_s=duration_s,
    )


def derived_methodology_efficiency(
    capacity_mbps: float,
    rtt_ms: float = 15.0,
    loss_rate: float = 1.2e-5,
    n_flows: int = 1,
    duration_s: float = 10.0,
    discard_ramp: bool = False,
    n_runs: int = 5,
    seed: int = 0,
) -> float:
    """Mean reported/capacity ratio over several simulated transfers.

    This is the dynamic-model counterpart of the scalar
    ``saturation_efficiency x methodology_efficiency`` product used by
    :mod:`repro.netsim.path`; the ablation experiment compares the two.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    ratios = []
    for i in range(n_runs):
        result = simulate_transfer(
            capacity_mbps,
            rtt_ms,
            loss_rate,
            n_flows=n_flows,
            duration_s=duration_s,
            discard_ramp=discard_ramp,
            seed=seed + i,
        )
        ratios.append(result.reported_mbps / capacity_mbps)
    return float(np.mean(ratios))
