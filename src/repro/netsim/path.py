"""End-to-end path composition: one simulated speed test.

A test's reported speed is the minimum of every ceiling along the path --
the shaped access link (with its time-of-day utilisation), the WiFi hop
(band, per-test RSSI and contention), the device's kernel-memory budget,
and the TCP methodology of the vendor (flow count, window, whether the
ramp-up is discarded) -- degraded by the fixed-duration saturation
shortfall and small measurement noise.

This is the module the vendor simulators (:mod:`repro.vendors`) call; it
is deliberately vendor-agnostic, parameterised by a :class:`FlowProfile`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.market.population import Subscriber
from repro.netsim.access import AccessLink, timeofday_factor
from repro.netsim.device import device_memory_cap_mbps
from repro.netsim.latency import LatencyModel
from repro.netsim.tcp import (
    flow_throughput_mbps,
    saturation_efficiency,
)
from repro.netsim.wifi import (
    sample_contention_factor,
    wifi_throughput_cap_mbps,
)

__all__ = [
    "FlowProfile",
    "TestConditions",
    "TestOutcome",
    "PathSimulator",
    "MULTI_FLOW_PROFILE",
    "SINGLE_FLOW_NDT_PROFILE",
    "WIRED_PANEL_PROFILE",
]


@dataclass(frozen=True)
class FlowProfile:
    """The TCP methodology of one measurement platform.

    Attributes
    ----------
    name:
        Human-readable profile name.
    n_flows:
        Parallel TCP connections (Ookla: several; NDT: exactly one).
    window_bytes:
        Per-flow receive-window budget.
    methodology_efficiency:
        Multiplicative efficiency of the measurement protocol itself --
        below 1.0 when the reported average includes the slow-start ramp
        (NDT) rather than discarding it (Ookla).
    client_efficiency_sigma:
        Log-space spread of the *consumer client* efficiency factor:
        browser limits, home-router forwarding, competing applications.
        Dedicated panel hardware (MBA whiteboxes) sets this to 0 -- the
        real data shows consumer desktops on Ethernet measuring below
        what MBA whiteboxes achieve on the same plans (Table 4 vs
        Section 4.3).
    """

    name: str
    n_flows: int
    window_bytes: float = 4 * 1024 * 1024
    methodology_efficiency: float = 1.0
    client_efficiency_sigma: float = 0.0

    def __post_init__(self):
        if self.n_flows < 1:
            raise ValueError("a profile needs at least one flow")
        if self.window_bytes <= 0:
            raise ValueError("window must be positive")
        if not 0 < self.methodology_efficiency <= 1.0:
            raise ValueError("methodology efficiency must be in (0, 1]")
        if self.client_efficiency_sigma < 0:
            raise ValueError("client efficiency sigma cannot be negative")


MULTI_FLOW_PROFILE = FlowProfile(
    name="multi-flow", n_flows=8, client_efficiency_sigma=0.18
)
SINGLE_FLOW_NDT_PROFILE = FlowProfile(
    name="ndt-single-flow",
    n_flows=1,
    window_bytes=2 * 1024 * 1024,
    methodology_efficiency=0.88,
    client_efficiency_sigma=0.18,
)
WIRED_PANEL_PROFILE = FlowProfile(name="wired-panel", n_flows=8)


@dataclass(frozen=True)
class TestConditions:
    """Everything sampled per test before throughput is computed."""

    hour: int
    rtt_ms: float
    loss_rate: float
    tod_factor: float
    rssi_dbm: float | None  # None on wired access
    contention_factor: float | None
    cross_traffic_mbps: float = 0.0

    def __post_init__(self):
        if not 0 <= self.hour <= 23:
            raise ValueError("hour must be 0-23")
        if self.cross_traffic_mbps < 0:
            raise ValueError("cross traffic cannot be negative")


@dataclass(frozen=True)
class TestOutcome:
    """Reported result of one simulated speed test."""

    download_mbps: float
    upload_mbps: float
    rtt_ms: float
    loss_rate: float
    conditions: TestConditions


def _household_rng(household_id: str, salt: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{household_id}:{salt}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class PathSimulator:
    """Simulates speed tests for subscribers of one city.

    Parameters
    ----------
    latency_model:
        RTT/loss sampler; defaults are metro-scale.
    seed:
        Base seed; per-household properties derive deterministically from
        the household id so a user's repeated tests share an access link.
    download_noise_sigma / upload_noise_sigma:
        Log-space measurement noise.  Upload noise is much smaller, which
        (with the small upload plan menu) is exactly why upload speed is
        the stable tier fingerprint of Section 4.1.
    """

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        seed: int = 0,
        download_noise_sigma: float = 0.08,
        upload_noise_sigma: float = 0.035,
        cross_traffic_scale_mbps: float = 12.0,
        model_modems: bool = False,
    ):
        self.latency_model = latency_model or LatencyModel()
        self.seed = seed
        self.download_noise_sigma = download_noise_sigma
        self.upload_noise_sigma = upload_noise_sigma
        if cross_traffic_scale_mbps < 0:
            raise ValueError("cross traffic scale cannot be negative")
        self.cross_traffic_scale_mbps = cross_traffic_scale_mbps
        # Optional extension (DESIGN.md / paper Section 8): model the
        # household's cable modem generation as an extra ceiling.
        self.model_modems = model_modems
        self.upstream_contention_prob = 0.03

    def _upstream_contention_prob(self, profile: FlowProfile) -> float:
        """Single-flow tests lose more to a competing upstream flow --
        a parallel-flow test reclaims its share of the uplink faster."""
        if profile.n_flows == 1:
            return 1.6 * self.upstream_contention_prob
        return 0.7 * self.upstream_contention_prob

    # ------------------------------------------------------------------
    def access_link(self, subscriber: Subscriber) -> AccessLink:
        """The subscriber's (deterministic) shaped access link."""
        rng = _household_rng(subscriber.household.household_id, self.seed)
        return AccessLink.for_household(subscriber.plan, rng)

    def household_modem(self, subscriber: Subscriber):
        """The household's (deterministic) cable modem generation."""
        from repro.netsim.modem import sample_modem

        rng = _household_rng(
            subscriber.household.household_id, self.seed + 1
        )
        return sample_modem(rng)

    def sample_conditions(
        self,
        subscriber: Subscriber,
        hour: int,
        rng: np.random.Generator,
    ) -> TestConditions:
        """Sample the per-test environment for one measurement."""
        on_wifi = subscriber.access == "wifi"
        rssi = None
        contention = None
        if on_wifi:
            household = subscriber.household
            rssi = float(
                np.clip(
                    household.rssi_mean_dbm + rng.normal(0.0, 5.0),
                    -88.0,
                    -20.0,
                )
            )
            contention = sample_contention_factor(household.band_ghz, rng)
        return TestConditions(
            hour=hour,
            rtt_ms=self.latency_model.sample_rtt_ms(
                rng,
                on_wifi=on_wifi,
                band_ghz=(
                    subscriber.household.band_ghz if on_wifi else None
                ),
            ),
            loss_rate=self.latency_model.sample_loss(rng, on_wifi=on_wifi),
            tod_factor=timeofday_factor(hour, rng),
            rssi_dbm=rssi,
            contention_factor=contention,
            cross_traffic_mbps=(
                float(rng.exponential(self.cross_traffic_scale_mbps))
                if on_wifi
                else 0.0
            ),
        )

    # ------------------------------------------------------------------
    def _path_ceilings(
        self,
        subscriber: Subscriber,
        conditions: TestConditions,
        direction: str,
    ) -> float:
        """Minimum of the non-TCP ceilings along the path (Mbps)."""
        link = self.access_link(subscriber)
        if direction == "download":
            ceilings = [link.download_capacity_mbps]
        else:
            ceilings = [link.upload_capacity_mbps]
        if subscriber.access == "wifi":
            assert conditions.rssi_dbm is not None
            assert conditions.contention_factor is not None
            if direction == "download":
                wifi_cap = wifi_throughput_cap_mbps(
                    subscriber.household.band_ghz,
                    conditions.rssi_dbm,
                    conditions.contention_factor,
                )
                # Other household devices consume airtime and downstream
                # capacity during the test (streaming, sync traffic).
                wifi_cap = max(
                    wifi_cap - conditions.cross_traffic_mbps, 1.0
                )
            else:
                # A short upload burst at residential rates (<= 40 Mbps)
                # claims airtime far more easily than a sustained
                # download saturating the channel, so contention barely
                # bites -- which keeps uploads the clean tier
                # fingerprint of Section 4.1.
                wifi_cap = wifi_throughput_cap_mbps(
                    subscriber.household.band_ghz,
                    conditions.rssi_dbm,
                    max(conditions.contention_factor, 0.8),
                )
            ceilings.append(wifi_cap)
        else:
            ceilings.append(940.0)  # gigabit Ethernet goodput
        if subscriber.platform in ("android", "ios"):
            ceilings.append(device_memory_cap_mbps(subscriber.memory_gb))
        if self.model_modems:
            modem = self.household_modem(subscriber)
            ceilings.append(
                modem.max_download_mbps
                if direction == "download"
                else modem.max_upload_mbps
            )
        return min(ceilings)

    def simulate_direction(
        self,
        subscriber: Subscriber,
        profile: FlowProfile,
        conditions: TestConditions,
        rng: np.random.Generator,
        direction: str,
    ) -> float:
        """Reported throughput for one direction of one test."""
        if direction not in ("download", "upload"):
            raise ValueError(f"unknown direction {direction!r}")
        path_cap = self._path_ceilings(subscriber, conditions, direction)
        per_flow = flow_throughput_mbps(
            conditions.rtt_ms,
            conditions.loss_rate,
            window_bytes=profile.window_bytes,
        )
        target = min(path_cap, profile.n_flows * per_flow)
        # Diurnal congestion is path-wide -- shared cable segment, WiFi
        # neighbourhood airtime, server load -- so it scales the achieved
        # rate whatever the binding ceiling is (Section 6.2's mild
        # overnight advantage).
        measured = (
            target
            * conditions.tod_factor
            * saturation_efficiency(target)
            * profile.methodology_efficiency
        )
        if (
            profile.client_efficiency_sigma > 0
            and direction == "upload"
            and rng.random() < self._upstream_contention_prob(profile)
        ):
            # A concurrent upstream flow (cloud backup, video call)
            # crushes the thin uplink during the test.  Consumer tests
            # hit this; panel whiteboxes defer measurements under cross
            # traffic, which is why MBA uploads stay clean while the
            # crowdsourced data shows an off-menu ~1 Mbps cluster
            # (Section 5.1 / Figure 6).
            measured *= float(rng.uniform(0.05, 0.35))
        if profile.client_efficiency_sigma > 0 and direction == "download":
            # Consumer environments (browsers, home routers, background
            # apps) shave download throughput below what dedicated panel
            # hardware achieves; never above a small headroom.  Uploads
            # are too slow for these client limits to bind, which keeps
            # the upload tier-fingerprint sharp (Section 4.1).
            factor = float(
                np.exp(rng.normal(-0.06, profile.client_efficiency_sigma))
            )
            measured *= min(factor, 1.05)
        sigma = (
            self.download_noise_sigma
            if direction == "download"
            else self.upload_noise_sigma
        )
        measured *= float(np.exp(rng.normal(0.0, sigma)))
        return max(measured, 0.05)

    def run_test(
        self,
        subscriber: Subscriber,
        profile: FlowProfile,
        hour: int,
        rng: np.random.Generator,
    ) -> TestOutcome:
        """Run one full (download + upload) simulated speed test."""
        conditions = self.sample_conditions(subscriber, hour, rng)
        download = self.simulate_direction(
            subscriber, profile, conditions, rng, "download"
        )
        upload = self.simulate_direction(
            subscriber, profile, conditions, rng, "upload"
        )
        return TestOutcome(
            download_mbps=download,
            upload_mbps=upload,
            rtt_ms=conditions.rtt_ms,
            loss_rate=conditions.loss_rate,
            conditions=conditions,
        )
