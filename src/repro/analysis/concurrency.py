"""Lock-discipline checker for the threaded subsystems.

:mod:`repro.serve`, :mod:`repro.obs`, and :mod:`repro.stream` share
mutable state across threads (HTTP handler threads, the micro-batch
worker, span/metric sinks, the stream monitor and refit scheduler).  The convention is lock-guarded attributes: state touched under
``with self._lock:`` must *always* be touched under it.  Two rules
enforce that statically:

- ``LOCK001`` -- *unguarded shared-state access*.  For every class that
  owns a ``threading.Lock``/``RLock``, the checker infers the set of
  protected attributes (attributes written at least once inside a
  ``with self._lock:`` block outside ``__init__``) and flags every read
  or write of a protected attribute that runs outside the lock.
  Private helpers whose every call site holds the lock (for example a
  ``_cache_put`` called only from guarded regions) are treated as
  lock-held, so the idiomatic guarded-helper pattern stays clean.
- ``LOCK002`` -- *inconsistent lock-acquisition order*.  Nested
  ``with``-lock regions record their (outer, inner) order; if one part
  of a module acquires ``a`` then ``b`` and another acquires ``b``
  then ``a``, the second pattern (by first appearance) is flagged --
  that shape is one unlucky schedule away from deadlock.

The inference is deliberately conservative: ``__init__`` runs before
the object is published and is exempt; classes without a lock
attribute are skipped (objects like ``queue.Queue`` synchronise
themselves); attributes never written under the lock are not treated
as protected.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.framework import FileContext, Finding, Rule
from repro.analysis.registry import register

__all__ = ["InconsistentLockOrder", "UnguardedSharedState", "analyze_class"]

LOCK_SCOPES = ("repro.serve", "repro.obs", "repro.stream")

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                   "BoundedSemaphore"}

# Method calls that mutate their receiver: `self._cache.move_to_end(k)`
# is a write to `_cache` even though the attribute node's ctx is Load.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
}


def _is_lock_ctor(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``Lock()`` / ``field(default_factory=...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return True
    if isinstance(func, ast.Name):
        if func.id in _LOCK_FACTORIES:
            return True
        if func.id == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory" and _is_dotted_lock(kw.value):
                    return True
    return False


def _is_dotted_lock(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _LOCK_FACTORIES
    return isinstance(node, ast.Name) and node.id in _LOCK_FACTORIES


@dataclass(frozen=True)
class _Access:
    attr: str
    line: int
    col: int
    write: bool
    guarded: bool
    method: str


@dataclass(frozen=True)
class _CallSite:
    callee: str
    guarded: bool
    method: str


@dataclass
class ClassLockReport:
    """What the checker learned about one class."""

    name: str
    lock_attrs: frozenset[str]
    protected: frozenset[str]
    violations: tuple[_Access, ...]


def _lock_attrs_of(cls: ast.ClassDef) -> frozenset[str]:
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _is_lock_ctor(node.value)
                ):
                    attrs.add(target.attr)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            # dataclass-style: `lock: threading.Lock = field(...)`
            if isinstance(node.target, ast.Name) and _is_lock_ctor(
                node.value
            ):
                attrs.add(node.target.id)
    return frozenset(attrs)


def _methods_of(cls: ast.ClassDef) -> list[ast.FunctionDef]:
    return [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _is_self_lock(node: ast.AST, lock_attrs: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in lock_attrs
    )


def _collect(
    method: ast.FunctionDef,
    lock_attrs: frozenset[str],
    method_names: frozenset[str],
) -> tuple[list[_Access], list[_CallSite]]:
    """Attribute accesses and self-method call sites, with guardedness."""
    accesses: list[_Access] = []
    calls: list[_CallSite] = []
    call_funcs: set[int] = set()
    write_ids: set[int] = set()

    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
            # Mutating method call on a self attribute.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _is_self_attr(func.value)
            ):
                write_ids.add(id(func.value))
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            # `self._cache[k] = v` / `del self._cache[k]`.
            if _is_self_attr(node.value):
                write_ids.add(id(node.value))

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node is not method
        ):
            return  # nested defs get their own scoping; stay conservative
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_guarded = guarded or any(
                _is_self_lock(item.context_expr, lock_attrs)
                for item in node.items
            )
            for item in node.items:
                visit(item, guarded)
            for stmt in node.body:
                visit(stmt, inner_guarded)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr not in lock_attrs
        ):
            if node.attr in method_names:
                if id(node) in call_funcs:
                    calls.append(
                        _CallSite(
                            callee=node.attr,
                            guarded=guarded,
                            method=method.name,
                        )
                    )
            else:
                accesses.append(
                    _Access(
                        attr=node.attr,
                        line=node.lineno,
                        col=node.col_offset,
                        write=(
                            isinstance(node.ctx, (ast.Store, ast.Del))
                            or id(node) in write_ids
                        ),
                        guarded=guarded,
                        method=method.name,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for stmt in method.body:
        visit(stmt, False)
    return accesses, calls


def analyze_class(cls: ast.ClassDef) -> "ClassLockReport | None":
    """Infer protected attributes and unguarded accesses for one class."""
    lock_attrs = _lock_attrs_of(cls)
    if not lock_attrs:
        return None
    methods = _methods_of(cls)
    method_names = frozenset(m.name for m in methods)
    accesses: list[_Access] = []
    calls: list[_CallSite] = []
    for method in methods:
        acc, cal = _collect(method, lock_attrs, method_names)
        accesses.extend(acc)
        calls.extend(cal)

    # Private helpers whose every call site holds the lock are lock-held
    # themselves (fixpoint over helper-calls-helper chains).  __init__
    # call sites count as guarded: construction precedes publication.
    sites_by_callee: dict[str, list[_CallSite]] = {}
    for site in calls:
        sites_by_callee.setdefault(site.callee, []).append(site)
    lock_held: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, sites in sites_by_callee.items():
            if name in lock_held or not name.startswith("_"):
                continue
            if name.startswith("__") and name.endswith("__"):
                continue
            if all(
                site.guarded
                or site.method == "__init__"
                or site.method in lock_held
                for site in sites
            ):
                lock_held.add(name)
                changed = True

    def effective(access: _Access) -> bool:
        return (
            access.guarded
            or access.method == "__init__"
            or access.method in lock_held
        )

    protected = frozenset(
        access.attr
        for access in accesses
        if access.write and effective(access) and access.method != "__init__"
    )
    violations = tuple(
        access
        for access in accesses
        if access.attr in protected
        and not effective(access)
        and access.method != "__init__"
    )
    return ClassLockReport(
        name=cls.name,
        lock_attrs=lock_attrs,
        protected=protected,
        violations=violations,
    )


@register
class UnguardedSharedState(Rule):
    """LOCK001: lock-protected attributes touched outside the lock."""

    id = "LOCK001"
    name = "unguarded-shared-state"
    severity = "error"
    scopes = LOCK_SCOPES
    description = (
        "attribute is written under 'with self._lock:' elsewhere in the "
        "class but read or written here without holding the lock -- a "
        "data race under the serving threads"
    )
    hint = (
        "take the lock around this access (or snapshot the value under "
        "the lock and use the local copy)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            report = analyze_class(node)
            if report is None:
                continue
            seen: set[tuple[str, int, str]] = set()
            for access in report.violations:
                kind = "write" if access.write else "read"
                key = (access.attr, access.line, kind)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    ctx,
                    access.line,
                    f"{report.name}.{access.attr} is lock-protected but "
                    f"{kind} without the lock in {access.method}()",
                )


def _lock_like(expr: ast.AST) -> "str | None":
    """The dotted text of a with-item that looks like a lock, else None."""
    node = expr
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return None
    text = ".".join(reversed(parts))
    return text if "lock" in text.lower() else None


def _nested_lock_pairs(
    tree: ast.Module,
) -> Iterator[tuple[str, str, int]]:
    """Every (outer, inner, inner_line) nested lock acquisition."""

    def visit(node: ast.AST, stack: tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            names = [
                name
                for item in node.items
                if (name := _lock_like(item.context_expr)) is not None
            ]
            inner_stack = stack
            for name in names:
                for outer in inner_stack:
                    if outer != name:
                        yield_list.append((outer, name, node.lineno))
                inner_stack = inner_stack + (name,)
            for stmt in node.body:
                visit(stmt, inner_stack)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    yield_list: list[tuple[str, str, int]] = []
    visit(tree, ())
    yield from yield_list


@register
class InconsistentLockOrder(Rule):
    """LOCK002: the same two locks acquired in both orders."""

    id = "LOCK002"
    name = "inconsistent-lock-order"
    severity = "error"
    scopes = LOCK_SCOPES
    description = (
        "two locks are acquired in opposite orders in different places "
        "in this module; two threads taking one each deadlocks"
    )
    hint = (
        "pick one global acquisition order for the pair and restructure "
        "the later site to follow it"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        first_line: dict[tuple[str, str], int] = {}
        sites: dict[tuple[str, str], list[int]] = {}
        for outer, inner, line in _nested_lock_pairs(ctx.tree):
            pair = (outer, inner)
            first_line.setdefault(pair, line)
            sites.setdefault(pair, []).append(line)
        for (a, b), lines in sorted(sites.items()):
            reverse = (b, a)
            if reverse not in first_line:
                continue
            # Flag only the order that appeared later, once per site.
            if (first_line[(a, b)], (a, b)) > (first_line[reverse], reverse):
                for line in lines:
                    yield self.finding(
                        ctx,
                        line,
                        f"acquires {a!r} then {b!r}, but line "
                        f"{first_line[reverse]} established the order "
                        f"{b!r} then {a!r}",
                    )
