"""Static analysis for the reproduction's own invariants (``repro lint``).

A zero-dependency AST lint framework plus a repo-specific rule set:
determinism (no wall-clock reads or unseeded RNGs in core paths),
correctness (no mutable default args, no silent broad excepts), and
observability discipline (span/metric names must match the documented
inventory), together with a lock-discipline checker for the threaded
serving and observability subsystems.  See docs/ANALYSIS.md for the
rule catalog and the baseline workflow.
"""

from repro.analysis.baseline import Baseline, finding_fingerprint
from repro.analysis.framework import (
    AnalysisReport,
    FileContext,
    Finding,
    Rule,
    analyze,
    check_source,
)
from repro.analysis.registry import catalog, default_rules, register, rules_for
from repro.analysis.report import render_json, render_text

__all__ = [
    "AnalysisReport",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "analyze",
    "catalog",
    "check_source",
    "default_rules",
    "finding_fingerprint",
    "register",
    "render_json",
    "render_text",
    "rules_for",
]
