"""Baseline files: suppress grandfathered findings without editing code.

A baseline is a JSON document mapping finding *fingerprints* to
entries.  The fingerprint hashes the rule id, the file path, and the
stripped source line text -- **not** the line number -- so unrelated
edits that shift code up or down do not invalidate the baseline, while
any change to the offending line itself resurfaces the finding.

Workflow::

    repro lint --baseline lint-baseline.json --write-baseline  # adopt
    repro lint --baseline lint-baseline.json                   # gate

``filter`` treats the baseline as a multiset: two identical offending
lines in one file consume two entries, so deleting one of them and
adding another elsewhere still fails the gate.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.framework import Finding

__all__ = ["Baseline", "BaselineEntry", "finding_fingerprint"]

BASELINE_SCHEMA = 1


def finding_fingerprint(finding: Finding) -> str:
    """Stable 16-hex-digit identity of one finding (line-number free)."""
    blob = "|".join(
        (finding.rule_id, finding.path, finding.snippet)
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    fingerprint: str
    rule: str
    path: str
    reason: str
    line: int = 0  # informational only; not part of the identity
    message: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "BaselineEntry":
        try:
            return cls(
                fingerprint=str(row["fingerprint"]),
                rule=str(row["rule"]),
                path=str(row["path"]),
                reason=str(row.get("reason", "")),
                line=int(row.get("line", 0)),
                message=str(row.get("message", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed baseline entry: {exc}") from exc


@dataclass
class Baseline:
    """A loaded suppression file."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline; an absent file is an empty baseline."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return cls()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt baseline {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"corrupt baseline {path}: expected an object")
        schema = data.get("schema", BASELINE_SCHEMA)
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"unknown baseline schema {schema!r} in {path}; "
                f"this build reads {BASELINE_SCHEMA}"
            )
        return cls(
            entries=[
                BaselineEntry.from_dict(row)
                for row in data.get("entries", [])
            ]
        )

    def save(self, path: str | Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [
                entry.to_dict()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.line)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        reason: str = "grandfathered",
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=finding_fingerprint(f),
                    rule=f.rule_id,
                    path=f.path,
                    reason=reason,
                    line=f.line,
                    message=f.message,
                )
                for f in findings
            ]
        )

    def filter(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into ``(new, baselined)`` (multiset semantics)."""
        budget = Counter(entry.fingerprint for entry in self.entries)
        new: list[Finding] = []
        matched: list[Finding] = []
        for finding in findings:
            fp = finding_fingerprint(finding)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        return new, matched
