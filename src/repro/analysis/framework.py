"""AST lint framework: file contexts, rules, allow directives, the runner.

The analysis subsystem walks a Python source tree (``src/`` by default),
parses every file once, and hands the shared :class:`FileContext` to a
set of registered :class:`Rule` objects.  Each rule yields
:class:`Finding` objects -- ``path:line:col``, a stable rule id, a
severity, a human message, and a fix hint -- which the ``repro lint``
CLI renders as text or JSON and gates CI on.

Everything here is stdlib-only (``ast``, ``tokenize``, ``re``), mirroring
the zero-dependency discipline of :mod:`repro.obs`.

Suppression
-----------
A finding can be silenced in place with a *justified* allow directive on
the same line (or the line directly above)::

    created_s=time.time(),  # lint: allow[DET002] registration timestamp

The justification text is mandatory: a bare ``# lint: allow[DET002]``
does not suppress anything and instead raises a ``LINT001`` finding, so
every grandfathered violation documents *why* it is sanctioned.  Larger
backlogs go in a baseline file instead (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "AllowDirective",
    "AnalysisReport",
    "FileContext",
    "Finding",
    "Rule",
    "analyze",
    "build_context",
    "check_source",
    "iter_python_files",
]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation, anchored to a source location."""

    path: str  # posix-style path relative to the scan root
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    hint: str = ""
    snippet: str = ""  # stripped source line (baseline fingerprinting)

    def format(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }


@dataclass(frozen=True)
class AllowDirective:
    """One ``# lint: allow[RULE, ...] reason`` comment."""

    line: int
    rule_ids: frozenset[str]
    reason: str

    @property
    def justified(self) -> bool:
        return bool(self.reason)


_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\[([A-Za-z0-9_*,\s]+)\]\s*(.*)$"
)


def parse_allows(source: str) -> list[AllowDirective]:
    """Extract allow directives from comment tokens (not string bodies)."""
    directives: list[AllowDirective] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if not match:
                continue
            ids = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            directives.append(
                AllowDirective(
                    line=tok.start[0],
                    rule_ids=ids,
                    reason=match.group(2).strip(" .-—:"),
                )
            )
    except tokenize.TokenError:
        pass  # the AST parse will report the syntax problem
    return directives


@dataclass
class FileContext:
    """Everything a rule needs about one source file (parsed once)."""

    path: Path  # absolute path on disk
    relpath: str  # posix path relative to the scan root
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    allows: list[AllowDirective] = field(default_factory=list)
    project_root: Path | None = None
    obs_doc: Path | None = None  # docs/OBSERVABILITY.md, when found

    @property
    def module(self) -> str:
        """Dotted module name (``repro.serve.server``)."""
        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def allowed_ids(self, line: int) -> frozenset[str]:
        """Justified allow ids covering ``line``.

        A trailing directive covers only its own line; a standalone
        comment line covers the line below it (so a directive tacked
        onto statement N never silently extends to statement N+1).
        """
        ids: set[str] = set()
        for directive in self.allows:
            if not directive.justified:
                continue
            if directive.line == line or (
                directive.line == line - 1
                and self.line_text(directive.line).startswith("#")
            ):
                ids |= directive.rule_ids
        return frozenset(ids)


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings for one :class:`FileContext`.  ``scopes`` limits a
    rule to dotted module prefixes (empty = the whole tree).
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""
    hint: str = ""
    scopes: tuple[str, ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        if not self.scopes:
            return True
        module = ctx.module
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.scopes
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored to ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.relpath,
            line=line,
            col=col,
            rule_id=self.id,
            severity=self.severity,
            message=message,
            hint=self.hint if hint is None else hint,
            snippet=ctx.line_text(line),
        )


# ---------------------------------------------------------------------------
# File discovery and context construction
# ---------------------------------------------------------------------------
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def iter_python_files(root: Path) -> list[Path]:
    """Every ``*.py`` under ``root``, sorted for deterministic output."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if not (_SKIP_DIRS & set(path.parts))
    )


def find_obs_doc(root: Path) -> Path | None:
    """Locate docs/OBSERVABILITY.md relative to the scan root.

    Walks upward from ``root`` so both ``repro lint`` from a checkout
    and an explicit ``--root src`` resolve the same document.
    """
    for base in (root, *root.resolve().parents):
        candidate = base / "docs" / "OBSERVABILITY.md"
        if candidate.is_file():
            return candidate
    return None


def build_context(
    path: Path,
    root: Path,
    obs_doc: Path | None = None,
) -> "FileContext | Finding":
    """Parse one file; a :class:`Finding` stands in for a syntax error."""
    path = Path(path)
    root = Path(root)
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return Finding(
            path=relpath,
            line=getattr(exc, "lineno", 0) or 0,
            col=0,
            rule_id="LINT002",
            severity="error",
            message=f"cannot parse file: {exc}",
            hint="fix the syntax error (nothing else was checked)",
        )
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        allows=parse_allows(source),
        project_root=root,
        obs_doc=obs_doc,
    )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding]
    suppressed: list[Finding]
    n_files: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "ok": self.ok,
            "files_checked": self.n_files,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def _directive_findings(ctx: FileContext, known_ids: set[str]) -> Iterator[Finding]:
    """LINT001: malformed or unjustified allow directives."""
    for directive in ctx.allows:
        if not directive.justified:
            yield Finding(
                path=ctx.relpath,
                line=directive.line,
                col=0,
                rule_id="LINT001",
                severity="error",
                message=(
                    "allow directive has no justification; write "
                    "'# lint: allow[RULE] <reason>'"
                ),
                hint="every suppression must say why it is sanctioned",
                snippet=ctx.line_text(directive.line),
            )
            continue
        unknown = sorted(
            rid for rid in directive.rule_ids
            if rid not in known_ids and rid != "*"
        )
        if unknown:
            yield Finding(
                path=ctx.relpath,
                line=directive.line,
                col=0,
                rule_id="LINT001",
                severity="error",
                message=(
                    "allow directive names unknown rule id(s): "
                    + ", ".join(unknown)
                ),
                hint="see docs/ANALYSIS.md for the rule catalog",
                snippet=ctx.line_text(directive.line),
            )


def analyze(
    root: str | Path,
    files: "Iterable[str | Path] | None" = None,
    rules: "Iterable[Rule] | None" = None,
    obs_doc: "str | Path | None" = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file under ``root``.

    ``files`` restricts the run to an explicit subset (still reported
    relative to ``root``).  ``obs_doc`` overrides the auto-located
    docs/OBSERVABILITY.md used by the observability naming rules.
    """
    from repro.analysis.registry import default_rules, known_rule_ids

    root = Path(root)
    rule_list = list(rules) if rules is not None else default_rules()
    # The full registry, not just the selected rules: a --select subset
    # run must not flag allow directives naming non-selected rules.
    known_ids = known_rule_ids() | {rule.id for rule in rule_list}
    doc = Path(obs_doc) if obs_doc is not None else find_obs_doc(root)
    paths = (
        [Path(p) for p in files] if files is not None
        else iter_python_files(root)
    )

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    n_files = 0
    for path in paths:
        ctx = build_context(path, root, obs_doc=doc)
        if isinstance(ctx, Finding):
            findings.append(ctx)
            continue
        n_files += 1
        raw: list[Finding] = []
        for rule in rule_list:
            if rule.applies(ctx):
                raw.extend(rule.check(ctx))
        for item in raw:
            if item.rule_id in ctx.allowed_ids(item.line):
                suppressed.append(item)
            else:
                findings.append(item)
        findings.extend(_directive_findings(ctx, known_ids))
    findings.sort()
    suppressed.sort()
    return AnalysisReport(
        findings=findings,
        suppressed=suppressed,
        n_files=n_files,
        rules_run=tuple(sorted(rule.id for rule in rule_list)),
    )


def check_source(
    source: str,
    relpath: str = "repro/example.py",
    rules: "Iterable[Rule] | None" = None,
    obs_doc: "str | Path | None" = None,
) -> list[Finding]:
    """Lint a source string (test helper; applies allow directives)."""
    tree = ast.parse(source)
    ctx = FileContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        allows=parse_allows(source),
        obs_doc=Path(obs_doc) if obs_doc is not None else None,
    )
    from repro.analysis.registry import default_rules, known_rule_ids

    rule_list = list(rules) if rules is not None else default_rules()
    known_ids = known_rule_ids() | {rule.id for rule in rule_list}
    out: list[Finding] = []
    for rule in rule_list:
        if rule.applies(ctx):
            for item in rule.check(ctx):
                if item.rule_id not in ctx.allowed_ids(item.line):
                    out.append(item)
    out.extend(_directive_findings(ctx, known_ids))
    return sorted(out)
