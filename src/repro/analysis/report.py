"""Rendering for ``repro lint``: grouped text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.analysis.framework import AnalysisReport, Finding

__all__ = ["render_json", "render_text", "summary_line"]


def _group_by_path(findings: Iterable[Finding]) -> dict[str, list[Finding]]:
    groups: dict[str, list[Finding]] = {}
    for finding in findings:
        groups.setdefault(finding.path, []).append(finding)
    return groups


def summary_line(
    report: AnalysisReport,
    n_baselined: int = 0,
) -> str:
    n = len(report.findings)
    parts = [
        f"{n} finding{'s' if n != 1 else ''}",
        f"{report.n_files} files",
        f"{len(report.rules_run)} rules",
    ]
    if report.suppressed:
        parts.append(f"{len(report.suppressed)} allowed inline")
    if n_baselined:
        parts.append(f"{n_baselined} baselined")
    return ", ".join(parts)


def render_text(
    report: AnalysisReport,
    n_baselined: int = 0,
) -> str:
    """Human-readable findings, grouped per file, summary last."""
    lines: list[str] = []
    for path, findings in sorted(_group_by_path(report.findings).items()):
        lines.append(path)
        for finding in findings:
            lines.append(
                f"  {finding.line}:{finding.col}  {finding.rule_id} "
                f"[{finding.severity}]  {finding.message}"
            )
            if finding.hint:
                lines.append(f"      hint: {finding.hint}")
        lines.append("")
    lines.append(
        ("FAIL " if report.findings else "OK ")
        + summary_line(report, n_baselined)
    )
    return "\n".join(lines)


def render_json(
    report: AnalysisReport,
    n_baselined: int = 0,
) -> str:
    """One JSON document (the CI artifact format)."""
    payload: dict[str, Any] = report.to_dict()
    payload["baselined"] = n_baselined
    payload["summary"] = summary_line(report, n_baselined)
    return json.dumps(payload, indent=2, sort_keys=True)
