"""Observability naming discipline.

`docs/OBSERVABILITY.md` is the contract: every span and metric the
pipeline emits is listed there, named ``<module>.<stage>`` in lowercase
dotted form.  Dashboards, the run-ledger span digest, and
``repro obs diff`` all key on those names, so an undocumented or
misspelled name is an observability regression:

- ``OBS001``: a ``span(...)`` / ``counter(...)`` / ``gauge(...)`` /
  ``histogram(...)`` name literal that is not lowercase dotted.
- ``OBS002``: a literal name missing from the documented inventory
  (rows with ``<placeholder>`` segments, e.g. ``vendor.<v>.generate``,
  match any lowercase segment; ``quality.*`` matches the prefix).

Dynamic names (f-strings) are checked fragment-wise for style and
skipped by the inventory rule.
"""

from __future__ import annotations

import ast
import re
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.framework import FileContext, Finding, Rule
from repro.analysis.registry import register

__all__ = ["ObsNameStyle", "UndocumentedObsName", "load_name_inventory"]

_INSTRUMENT_FUNCS = {"span", "counter", "gauge", "histogram"}

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")

_TOKEN_RE = re.compile(r"`([a-z0-9_.<>*]+)`")
_SECTION_HEAD = "## Naming convention"


def _terminal_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _instrument_calls(
    tree: ast.Module,
) -> Iterator[tuple[ast.Call, str, ast.AST]]:
    """Calls to span/counter/gauge/histogram with their first argument."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        name = _terminal_name(node.func)
        if name in _INSTRUMENT_FUNCS:
            yield node, name, node.args[0]


@lru_cache(maxsize=8)
def _inventory_patterns(doc_path: str) -> "tuple[re.Pattern, ...]":
    return tuple(
        re.compile(pattern)
        for pattern in load_name_inventory(Path(doc_path))
    )


def load_name_inventory(doc_path: Path) -> list[str]:
    """Regex sources for every documented span/metric name.

    Parses the markdown tables in the *Naming convention* section of
    docs/OBSERVABILITY.md: every backticked lowercase dotted token in a
    table row's first column is an inventory entry.  ``<placeholder>``
    segments become ``[a-z0-9_]+`` and a literal ``*`` becomes ``.+``.
    """
    text = doc_path.read_text(encoding="utf-8")
    start = text.find(_SECTION_HEAD)
    if start < 0:
        return []
    tail = text[start + len(_SECTION_HEAD):]
    end = tail.find("\n## ")
    section = tail if end < 0 else tail[:end]
    patterns: list[str] = []
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        first_cell = line.split("|")[1]
        for token in _TOKEN_RE.findall(first_cell):
            escaped = re.escape(token)
            escaped = re.sub(r"<[a-z0-9_]+>", r"[a-z0-9_]+", escaped)
            escaped = escaped.replace(r"\*", ".+")
            patterns.append(f"^{escaped}$")
    return patterns


@register
class ObsNameStyle(Rule):
    """OBS001: span/metric names must be lowercase dotted."""

    id = "OBS001"
    name = "obs-name-style"
    severity = "error"
    description = (
        "span/metric name literal is not lowercase dotted "
        "('<module>.<stage>'); mixed-case or spaced names break the "
        "naming contract in docs/OBSERVABILITY.md"
    )
    hint = "rename to lowercase '<module>.<stage>' (e.g. 'bst.fit_upload')"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, func, arg in _instrument_calls(ctx.tree):
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if not _NAME_RE.match(arg.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"{func}() name {arg.value!r} is not lowercase "
                        "dotted",
                    )
            elif isinstance(arg, ast.JoinedStr):
                for piece in arg.values:
                    if (
                        isinstance(piece, ast.Constant)
                        and isinstance(piece.value, str)
                        and not _FRAGMENT_RE.match(piece.value)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{func}() dynamic name fragment "
                            f"{piece.value!r} is not lowercase dotted",
                        )


@register
class UndocumentedObsName(Rule):
    """OBS002: literal names must appear in docs/OBSERVABILITY.md."""

    id = "OBS002"
    name = "undocumented-obs-name"
    severity = "error"
    description = (
        "span/metric name literal is not in the documented inventory "
        "(the Naming convention tables in docs/OBSERVABILITY.md)"
    )
    hint = (
        "add the name to the span/metric table in docs/OBSERVABILITY.md "
        "(dashboards and `repro obs diff` key on that inventory)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.obs_doc is None or not Path(ctx.obs_doc).is_file():
            return
        patterns = _inventory_patterns(str(ctx.obs_doc))
        if not patterns:
            return
        for node, func, arg in _instrument_calls(ctx.tree):
            if not (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ):
                continue
            name = arg.value
            if not _NAME_RE.match(name):
                continue  # OBS001 already reports style problems
            if not any(pattern.match(name) for pattern in patterns):
                yield self.finding(
                    ctx,
                    node,
                    f"{func}() name {name!r} is not documented in "
                    "docs/OBSERVABILITY.md",
                )
