"""Correctness rules: failure modes that corrupt results silently.

- ``COR001``: mutable default arguments (the shared-instance trap).
- ``COR002``: bare ``except:`` (swallows ``KeyboardInterrupt`` and
  ``SystemExit`` along with everything else).
- ``COR003``: a broad handler (bare / ``Exception`` / ``BaseException``)
  whose body is only ``pass`` -- I/O and math failures vanish without a
  trace, which is exactly how a reproduction drifts from the paper
  without anyone noticing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import FileContext, Finding, Rule
from repro.analysis.registry import register

__all__ = ["BareExcept", "MutableDefaultArg", "SilentBroadExcept"]


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray",
                                "defaultdict", "OrderedDict", "Counter",
                                "deque")
    return False


@register
class MutableDefaultArg(Rule):
    """COR001: default argument values shared across every call."""

    id = "COR001"
    name = "mutable-default-arg"
    severity = "error"
    description = (
        "mutable default argument is evaluated once and shared by every "
        "call; mutations leak across invocations"
    )
    hint = "default to None and construct the container inside the body"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}()",
                    )


@register
class BareExcept(Rule):
    """COR002: ``except:`` catches interpreter-exit exceptions too."""

    id = "COR002"
    name = "bare-except"
    severity = "error"
    description = (
        "bare 'except:' also catches KeyboardInterrupt/SystemExit and "
        "hides the real failure class"
    )
    hint = "name the exception types the handler can actually recover from"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare 'except:' clause")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[ast.AST] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for item in names:
        if isinstance(item, ast.Name) and item.id in (
            "Exception", "BaseException"
        ):
            return True
        if isinstance(item, ast.Attribute) and item.attr in (
            "Exception", "BaseException"
        ):
            return True
    return False


def _is_silent(body: list[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis)
        for stmt in body
    )


@register
class SilentBroadExcept(Rule):
    """COR003: broad handlers that discard the exception entirely."""

    id = "COR003"
    name = "silent-broad-except"
    severity = "error"
    description = (
        "broad exception handler whose body is only 'pass': failures "
        "(I/O errors included) disappear without logging or counting"
    )
    hint = (
        "narrow the exception type, or log through repro.obs before "
        "continuing; truly-sanctioned swallows take a justified "
        "'# lint: allow[COR003] <reason>'"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ExceptHandler)
                and _is_broad(node)
                and _is_silent(node.body)
            ):
                yield self.finding(
                    ctx, node, "broad exception silently swallowed"
                )
