"""Determinism rules: the byte-identical-replay invariants.

The reproduction's headline claim -- identical BST output for identical
``--seed`` -- holds only while no core path reads the wall clock or
draws from an unseeded RNG, and while nothing iterates hash-ordered
containers.  These rules make those invariants machine-checked:

- ``DET001``: module-level ``random.*`` / ``np.random.*`` draws (the
  process-global RNG is shared, unseeded state).
- ``DET002``: wall-clock reads (``time.time``, zero-argument
  ``time.gmtime``/``localtime``, ``datetime.now`` and friends).
- ``DET003``: unseeded RNG construction and ambient entropy
  (``default_rng()`` with no seed, ``random.Random()``, global
  ``seed(...)`` calls, ``os.urandom``, ``uuid.uuid4``, ``secrets``).
- ``DET004``: iteration directly over a ``set`` in the numeric core --
  hash order varies across ``PYTHONHASHSEED`` for strings.
- ``DET005``: any wall-clock *reference* (not just call) inside
  ``repro.stream`` -- the streaming lifecycle is specified to be
  deterministic under an injected clock, so even ``time.monotonic`` and
  ``time.sleep`` are banned there outside the sanctioned bridge in
  :mod:`repro.stream.clock`.

Sanctioned exceptions (provenance timestamps, run-id entropy) carry a
justified ``# lint: allow[...]`` directive at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import FileContext, Finding, Rule
from repro.analysis.registry import register

__all__ = [
    "GlobalRandomDraw",
    "SetOrderIteration",
    "StreamWallClock",
    "UnseededEntropy",
    "WallClockRead",
]

CORE_SCOPES = ("repro.core", "repro.stats", "repro.vendors")


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """``np.random.default_rng`` -> ``("np", "random", "default_rng")``.

    Empty when the chain is rooted anywhere but a plain name (so
    ``self.rng.normal(...)`` -- an instance RNG -- never matches).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _calls(tree: ast.Module) -> Iterator[tuple[ast.Call, tuple[str, ...]]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain:
                yield node, chain


_NUMPY_ROOTS = ("np", "numpy")

# numpy.random module-level functions that draw from the global RNG.
_NP_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "exponential",
    "poisson", "lognormal", "gamma", "beta", "binomial",
}

# stdlib `random` module draw functions (module-level = global RNG).
_STDLIB_DRAWS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "triangular", "vonmisesvariate",
    "randbytes", "getrandbits",
}


@register
class GlobalRandomDraw(Rule):
    """DET001: draws from the process-global (unseeded) RNG."""

    id = "DET001"
    name = "global-random-draw"
    severity = "error"
    description = (
        "call draws from the module-level random / numpy.random global "
        "RNG, whose state is process-wide and unseeded"
    )
    hint = (
        "thread an explicit np.random.default_rng(seed) (or "
        "random.Random(seed)) instance through the call chain"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, chain in _calls(ctx.tree):
            if (
                len(chain) == 2
                and chain[0] == "random"
                and chain[1] in _STDLIB_DRAWS
            ):
                yield self.finding(
                    ctx, node, f"global RNG draw random.{chain[1]}()"
                )
            elif (
                len(chain) == 3
                and chain[0] in _NUMPY_ROOTS
                and chain[1] == "random"
                and chain[2] in _NP_GLOBAL_DRAWS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"global RNG draw {chain[0]}.random.{chain[2]}()",
                )


# (module-chain suffix, zero-arg-only) pairs that read the wall clock.
_WALL_CLOCK = {
    ("time", "time"): False,
    ("time", "time_ns"): False,
    ("time", "gmtime"): True,  # with an argument it converts, not reads
    ("time", "localtime"): True,
    ("time", "ctime"): True,
    ("time", "asctime"): True,
    ("datetime", "now"): False,
    ("datetime", "utcnow"): False,
    ("date", "today"): False,
}


@register
class WallClockRead(Rule):
    """DET002: wall-clock reads make output depend on when it ran."""

    id = "DET002"
    name = "wall-clock-read"
    severity = "error"
    description = (
        "reads the wall clock (time.time / datetime.now / ...); output "
        "depends on when the code ran, not only on its inputs"
    )
    hint = (
        "use time.monotonic()/perf_counter() for durations, or pass the "
        "timestamp in; sanctioned provenance timestamps take a "
        "justified '# lint: allow[DET002] <reason>'"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, chain in _calls(ctx.tree):
            if len(chain) < 2:
                continue
            key = (chain[-2], chain[-1])
            zero_arg_only = _WALL_CLOCK.get(key)
            if zero_arg_only is None:
                continue
            if zero_arg_only and (node.args or node.keywords):
                continue
            yield self.finding(
                ctx, node, f"wall-clock read {'.'.join(chain)}()"
            )


@register
class UnseededEntropy(Rule):
    """DET003: RNGs built without a seed, and ambient entropy sources."""

    id = "DET003"
    name = "unseeded-entropy"
    severity = "error"
    description = (
        "constructs an RNG without an explicit seed, reseeds the global "
        "RNG, or pulls ambient entropy (os.urandom / uuid4 / secrets)"
    )
    hint = (
        "derive the seed from the caller's seed (config, CLI --seed, or "
        "a stable content hash such as zlib.crc32(name))"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node, chain in _calls(ctx.tree):
            dotted = ".".join(chain)
            no_args = not node.args and not node.keywords
            if (
                chain[-1] in ("default_rng", "RandomState")
                and len(chain) >= 2
                and chain[-2] == "random"
                and no_args
            ):
                yield self.finding(
                    ctx, node, f"unseeded generator {dotted}()"
                )
            elif dotted == "random.Random" and no_args:
                yield self.finding(
                    ctx, node, "unseeded generator random.Random()"
                )
            elif chain[-1] == "seed" and chain[0] in (
                "random", *_NUMPY_ROOTS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() reseeds the process-global RNG",
                )
            elif dotted in ("os.urandom", "uuid.uuid4") or chain[0] == (
                "secrets"
            ):
                yield self.finding(
                    ctx, node, f"ambient entropy source {dotted}()"
                )


# Attribute chains that touch the wall clock or real sleeping.  DET005
# bans *references*, not just calls: `return time.monotonic` hands the
# wall clock to a caller as surely as calling it would.
_STREAM_CLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "thread_time"),
    ("time", "sleep"),
    ("time", "gmtime"),
    ("time", "localtime"),
    ("time", "strftime"),
    ("time", "ctime"),
    ("time", "asctime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}


@register
class StreamWallClock(Rule):
    """DET005: the streaming subsystem must use the injectable clock."""

    id = "DET005"
    name = "stream-wall-clock"
    severity = "error"
    scopes = ("repro.stream",)
    description = (
        "references the wall clock (time.* / datetime.*) inside "
        "repro.stream; the streaming lifecycle is deterministic only "
        "under an injected clock, so real time may enter solely through "
        "repro.stream.clock"
    )
    hint = (
        "take `clock` / `sleep` callables as parameters and wire "
        "repro.stream.clock.system_clock()/system_sleep() at the edge"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if (
                    len(chain) >= 2
                    and chain[0] in ("time", "datetime", "date")
                    and (chain[-2], chain[-1]) in _STREAM_CLOCK_ATTRS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock reference {'.'.join(chain)}",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "datetime",
            ):
                # `from time import monotonic` would alias the clock
                # past the attribute check above; ban the import form.
                names = ", ".join(alias.name for alias in node.names)
                yield self.finding(
                    ctx,
                    node,
                    f"`from {node.module} import {names}` smuggles the "
                    "wall clock past the injectable-clock seam",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, a ``set(...)``/``frozenset(...)`` call, or a set op."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # `seen | new` is only set-typed if a side visibly is.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetOrderIteration(Rule):
    """DET004: hash-ordered iteration in the numeric core."""

    id = "DET004"
    name = "set-order-iteration"
    severity = "error"
    scopes = CORE_SCOPES
    description = (
        "iterates a set (or materialises one) in hash order; string "
        "hashing varies across PYTHONHASHSEED, so downstream order -- "
        "and any result built from it -- is not reproducible"
    )
    hint = "wrap the set in sorted(...) before iterating or listing it"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        sorted_iters: set[int] = set()
        for node in ast.walk(ctx.tree):
            # sorted(set(...)) / sorted({...}) is the sanctioned fix.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "min", "max", "sum", "len",
                                     "any", "all")
                and node.args
            ):
                sorted_iters.add(id(node.args[0]))
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate")
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if id(it) in sorted_iters:
                    continue
                if _is_set_expr(it):
                    yield self.finding(
                        ctx, it, "iteration over a set is hash-ordered"
                    )
