"""Built-in lint rules (imported for their registration side effects)."""

from repro.analysis.rules import correctness, determinism, observability

__all__ = ["correctness", "determinism", "observability"]
