"""Rule registry: id -> rule class, with lazy rule-module loading.

Rule modules register themselves at import time::

    from repro.analysis.registry import register

    @register
    class WallClockRead(Rule):
        id = "DET002"
        ...

:func:`default_rules` imports the built-in rule modules on first use
(so ``framework`` stays import-cycle free) and returns one instance of
every registered rule, sorted by id.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.analysis.framework import Rule

__all__ = [
    "all_rule_classes",
    "catalog",
    "default_rules",
    "known_rule_ids",
    "register",
    "rules_for",
]

_RULES: dict[str, type[Rule]] = {}

_ID_RE = re.compile(r"^[A-Z]{3,5}\d{3}$")

# Framework-emitted pseudo-rules (documented, not instantiable).
FRAMEWORK_IDS = {
    "LINT001": "allow directive without a justification or with an "
               "unknown rule id",
    "LINT002": "file could not be parsed (syntax error)",
}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids are unique)."""
    if not _ID_RE.match(cls.id or ""):
        raise ValueError(
            f"rule id {cls.id!r} does not match '^[A-Z]{{3,5}}\\d{{3}}$'"
        )
    if cls.severity not in ("error", "warning"):
        raise ValueError(f"rule {cls.id}: bad severity {cls.severity!r}")
    existing = _RULES.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Imported for their registration side effects.
    import repro.analysis.concurrency  # noqa: F401
    import repro.analysis.rules  # noqa: F401


def all_rule_classes() -> dict[str, type[Rule]]:
    """Registered rule classes by id (built-ins loaded on demand)."""
    _load_builtin_rules()
    return dict(_RULES)


def known_rule_ids() -> set[str]:
    """Every valid rule id: registered rules plus the framework's own."""
    return set(all_rule_classes()) | set(FRAMEWORK_IDS)


def default_rules() -> list[Rule]:
    """One instance of every registered rule, sorted by id."""
    return [cls() for _, cls in sorted(all_rule_classes().items())]


def rules_for(select: "Iterable[str] | None") -> list[Rule]:
    """Instances for the selected ids (None = all); raises on unknowns."""
    if select is None:
        return default_rules()
    classes = all_rule_classes()
    wanted = list(select)
    unknown = sorted(set(wanted) - set(classes))
    if unknown:
        raise KeyError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(classes))}"
        )
    return [classes[rid]() for rid in sorted(set(wanted))]


def catalog() -> list[dict[str, Any]]:
    """Rule metadata for ``repro lint --list-rules`` and the docs."""
    rows = [
        {
            "id": rid,
            "name": cls.name,
            "severity": cls.severity,
            "scopes": list(cls.scopes) or ["(whole tree)"],
            "description": cls.description,
        }
        for rid, cls in sorted(all_rule_classes().items())
    ]
    for rid, description in sorted(FRAMEWORK_IDS.items()):
        rows.append(
            {
                "id": rid,
                "name": "framework",
                "severity": "error",
                "scopes": ["(whole tree)"],
                "description": description,
            }
        )
    return rows
