"""Record schemas and shared sampling helpers for the vendor simulators.

The column sets mirror what each real dataset exposes (Section 3):
Ookla's Speedtest Intelligence rows carry QoS metrics plus device/access
metadata; M-Lab NDT rows are direction-specific with IPs and RTT only;
MBA rows add the ground-truth subscription tier.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "OOKLA_COLUMNS",
    "MLAB_COLUMNS",
    "MBA_COLUMNS",
    "DIURNAL_BIN_WEIGHTS",
    "sample_test_hour",
    "sample_test_month",
]

# Fraction of tests starting in each 6-hour local bin (00-06, 06-12,
# 12-18, 18-24).  Figure 11: fewest tests overnight, most in the
# afternoon/evening, with little variation across tiers.
DIURNAL_BIN_WEIGHTS = (0.10, 0.25, 0.33, 0.32)

OOKLA_COLUMNS = (
    "test_id",
    "user_id",
    "city",
    "isp",
    "platform",  # android | ios | desktop-wifi | desktop-ethernet | web
    "origin",  # native | web
    "access",  # wifi | ethernet | unknown (web tests carry no metadata)
    "download_mbps",
    "upload_mbps",
    "latency_ms",
    "month",  # 1-12
    "hour",  # 0-23 local
    "wifi_band_ghz",  # Android only; NaN otherwise
    "rssi_dbm",  # Android only; NaN otherwise
    "memory_gb",  # Android only; NaN otherwise
    "true_tier",  # simulation ground truth -- not in the real dataset
)

MLAB_COLUMNS = (
    "test_id",
    "client_ip",
    "server_ip",
    "asn",
    "city",
    "isp",
    "direction",  # download | upload (NDT records are one-directional)
    "speed_mbps",
    "rtt_ms",
    "timestamp_s",  # seconds since Jan 1 local
    "month",
    "hour",
    "true_tier",  # simulation ground truth -- not in the real dataset
)

MBA_COLUMNS = (
    "unit_id",
    "state",
    "isp",
    "download_mbps",
    "upload_mbps",
    "month",
    "hour",
    "tier",  # ground truth: MBA publishes the subscribed plan
)


def sample_test_hour(rng: np.random.Generator) -> int:
    """Sample a local test hour from the diurnal profile of Figure 11."""
    bin_index = int(
        rng.choice(len(DIURNAL_BIN_WEIGHTS), p=np.asarray(DIURNAL_BIN_WEIGHTS))
    )
    return int(bin_index * 6 + rng.integers(0, 6))


def sample_test_month(
    rng: np.random.Generator,
    excluded_months: tuple[int, ...] = (),
) -> int:
    """Sample a month 1-12 uniformly, skipping ``excluded_months``.

    The MBA 2021 release lacks September and October (Section 3).
    """
    allowed = [m for m in range(1, 13) if m not in excluded_months]
    if not allowed:
        raise ValueError("every month excluded")
    return int(rng.choice(allowed))
