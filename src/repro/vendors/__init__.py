"""Speed test vendor simulators: Ookla, M-Lab NDT, and the FCC MBA panel.

Each simulator draws subscribers from the market model, runs their tests
through the :mod:`repro.netsim` path simulator with the vendor's own TCP
methodology, and emits a :class:`~repro.frame.ColumnTable` with the
vendor's metadata schema:

- **Ookla** (:mod:`repro.vendors.ookla`): multi-flow tests; native-app
  records carry platform, access type, and (Android only) WiFi band, RSSI
  and kernel memory; web records carry none of that.
- **M-Lab NDT** (:mod:`repro.vendors.mlab`): single-flow tests; download
  and upload are *separate* records keyed by client/server IP and
  timestamp, as in the real NDT archive (Section 3.2).
- **MBA** (:mod:`repro.vendors.mba`): wired whitebox units measuring a few
  times daily with ground-truth subscription tiers (Section 3.3).

Every record also carries ``true_tier`` -- the simulated ground truth.
The real Ookla/M-Lab datasets lack this; analysis code must not consume it
outside accuracy evaluation, which is exactly how the paper uses MBA.
"""

from repro.vendors.schema import (
    OOKLA_COLUMNS,
    MLAB_COLUMNS,
    MBA_COLUMNS,
    sample_test_hour,
    DIURNAL_BIN_WEIGHTS,
)
from repro.vendors.ookla import OoklaSimulator
from repro.vendors.mlab import MLabSimulator
from repro.vendors.mba import MBASimulator

__all__ = [
    "OOKLA_COLUMNS",
    "MLAB_COLUMNS",
    "MBA_COLUMNS",
    "sample_test_hour",
    "DIURNAL_BIN_WEIGHTS",
    "OoklaSimulator",
    "MLabSimulator",
    "MBASimulator",
]
