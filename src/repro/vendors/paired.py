"""Paired vendor generation: one household, both platforms.

Section 6.3 compares Ookla and M-Lab "within the same subscription
tier, for the same city, and the same ISP" -- a population-level
matching, because the real datasets cannot link a household across
vendors.  The simulator can: this module drives *one* subscriber
population through both vendors' methodologies, so the vendor gap can
be measured per household with everything else held fixed.  This is
the strongest form of the paper's claim, achievable only in
simulation.
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.market.isps import city_catalog
from repro.market.population import SubscriberPopulation, default_city_config
from repro.netsim.latency import LatencyModel
from repro.netsim.path import (
    MULTI_FLOW_PROFILE,
    SINGLE_FLOW_NDT_PROFILE,
    PathSimulator,
)
from repro.netsim.servers import MLAB_POOL, OOKLA_POOL
from repro.vendors.schema import sample_test_hour

__all__ = ["generate_paired_tests"]


def generate_paired_tests(
    city: str,
    n_users: int,
    seed: int = 0,
) -> ColumnTable:
    """One Ookla-style and one NDT-style test per simulated household.

    Both tests share the household (plan, access link, WiFi placement,
    device) and the local hour; each runs under its own vendor's flow
    profile and server pool.  Returns one row per user with
    ``ookla_download_mbps`` / ``mlab_download_mbps`` (and uploads), the
    household ground truth, and the per-user vendor ratio.
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    catalog = city_catalog(city)
    population = SubscriberPopulation(
        city, catalog, default_city_config(city, "ookla"), seed=seed
    )
    users = population.generate_users(n_users, seed=seed + 1)
    ookla_path = PathSimulator(
        latency_model=LatencyModel(**OOKLA_POOL.latency_model_kwargs()),
        seed=seed,
    )
    mlab_path = PathSimulator(
        latency_model=LatencyModel(**MLAB_POOL.latency_model_kwargs()),
        seed=seed,
    )
    rng = np.random.default_rng(seed + 2)
    columns: dict[str, list] = {
        "user_id": [],
        "city": [],
        "true_tier": [],
        "plan_download_mbps": [],
        "plan_upload_mbps": [],
        "hour": [],
        "ookla_download_mbps": [],
        "ookla_upload_mbps": [],
        "mlab_download_mbps": [],
        "mlab_upload_mbps": [],
    }
    for user in users:
        hour = sample_test_hour(rng)
        ookla = ookla_path.run_test(user, MULTI_FLOW_PROFILE, hour, rng)
        mlab = mlab_path.run_test(
            user, SINGLE_FLOW_NDT_PROFILE, hour, rng
        )
        columns["user_id"].append(user.user_id)
        columns["city"].append(city.upper())
        columns["true_tier"].append(user.tier)
        columns["plan_download_mbps"].append(user.plan.download_mbps)
        columns["plan_upload_mbps"].append(user.plan.upload_mbps)
        columns["hour"].append(hour)
        columns["ookla_download_mbps"].append(ookla.download_mbps)
        columns["ookla_upload_mbps"].append(ookla.upload_mbps)
        columns["mlab_download_mbps"].append(mlab.download_mbps)
        columns["mlab_upload_mbps"].append(mlab.upload_mbps)
    return ColumnTable(columns)
