"""FCC Measuring Broadband America (MBA) panel simulator.

MBA "uses specialized hardware test units to collect Internet measurement
data from 4,000 U.S. households", measuring "multiple times per day" over
wired connections, and -- critically for the paper -- publishes the
subscriber's broadband plan (Section 3.3).  Table 2 gives the per-state
panel sizes for the four dominant ISPs (20/17/10/11 units); Section 3
notes the 2021 release lacks September-October data.

The simulated panel mirrors all of that: a small set of wired whitebox
units, each bound to one ground-truth subscription tier, each running a
few tests per day across the ten available months.
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.market.isps import state_catalog
from repro.market.plans import PlanCatalog
from repro.market.population import Household, Subscriber
from repro.netsim.path import WIRED_PANEL_PROFILE, FlowProfile, PathSimulator
from repro.obs import metrics as obs_metrics
from repro.obs.quality import get_quality
from repro.obs.trace import span
from repro.vendors.schema import MBA_COLUMNS

__all__ = ["MBASimulator", "MBA_UNITS_PER_STATE"]

# Table 2: number of MBA units subscribing to the dominant ISP per state.
MBA_UNITS_PER_STATE = {"A": 20, "B": 17, "C": 10, "D": 11}

# Months present in the 2021 MBA release (September/October missing).
MBA_MONTHS = tuple(m for m in range(1, 13) if m not in (9, 10))

# Per-tier unit weights for State-A, from the Section 4.3 measurement
# counts (15,781 in tiers 2-3; 4,185 tier 4; 2,453 tier 5; 3,508 tier 6).
_STATE_A_TIER_WEIGHTS = {2: 0.32, 3: 0.29, 4: 0.16, 5: 0.095, 6: 0.135}


class MBASimulator:
    """Simulate one state's MBA panel against its dominant ISP.

    Parameters
    ----------
    state:
        State id ("A"-"D"); uses the state's observed plan catalog
        (State-A lacks the 25/5 plan, Section 4.3).
    n_units:
        Panel size; defaults to the Table 2 count.
    tests_per_day:
        Mean daily tests per unit ("multiple times per day").
    """

    def __init__(
        self,
        state: str,
        catalog: PlanCatalog | None = None,
        n_units: int | None = None,
        tests_per_day: float = 4.0,
        profile: FlowProfile = WIRED_PANEL_PROFILE,
        seed: int = 0,
    ):
        self.state = state.upper()
        self.catalog = catalog or state_catalog(self.state)
        self.n_units = (
            MBA_UNITS_PER_STATE[self.state] if n_units is None else n_units
        )
        if self.n_units < 1:
            raise ValueError("panel needs at least one unit")
        if tests_per_day <= 0:
            raise ValueError("tests_per_day must be positive")
        self.tests_per_day = tests_per_day
        self.profile = profile
        self.seed = seed
        self.path = PathSimulator(seed=seed)

    # ------------------------------------------------------------------
    def _tier_weights(self) -> dict[int, float]:
        if self.state == "A":
            weights = dict(_STATE_A_TIER_WEIGHTS)
        else:
            # Other panels: skew toward lower tiers, every tier present.
            tiers = self.catalog.tiers
            raw = {t: 1.0 / (rank + 1) for rank, t in enumerate(tiers)}
            total = sum(raw.values())
            weights = {t: w / total for t, w in raw.items()}
        observed = {t: w for t, w in weights.items() if t in self.catalog.tiers}
        total = sum(observed.values())
        return {t: w / total for t, w in observed.items()}

    def build_units(self) -> list[Subscriber]:
        """The panel: wired whitebox units with ground-truth tiers.

        Every tier receives at least one unit (the panel exists to measure
        every plan) with the remainder allocated by the tier weights.
        """
        weights = self._tier_weights()
        tiers = sorted(weights)
        if self.n_units < len(tiers):
            # Tiny panels: fill the highest-weight tiers first.
            tiers = sorted(tiers, key=lambda t: -weights[t])[: self.n_units]
            counts = {t: 1 for t in tiers}
        else:
            counts = {t: 1 for t in tiers}
            remaining = self.n_units - len(tiers)
            rng = np.random.default_rng(self.seed + 10)
            probs = np.asarray([weights[t] for t in tiers])
            probs = probs / probs.sum()
            extra = rng.choice(tiers, size=remaining, p=probs)
            for tier in extra:
                counts[int(tier)] += 1
        units: list[Subscriber] = []
        index = 0
        for tier in sorted(counts):
            plan = self.catalog.plan_for_tier(tier)
            for _ in range(counts[tier]):
                household = Household(
                    household_id=f"mba-{self.state}-h{index:04d}",
                    city=self.state,
                    tier=tier,
                    plan=plan,
                    rssi_mean_dbm=-40.0,  # unused: units are wired
                    band_ghz=5.0,
                )
                units.append(
                    Subscriber(
                        user_id=f"mba-{self.state}-unit{index:04d}",
                        household=household,
                        platform="desktop-ethernet",
                        access="ethernet",
                        memory_gb=16.0,
                        n_tests=1,
                    )
                )
                index += 1
        return units

    def generate(self, n_tests: int | None = None) -> ColumnTable:
        """Generate the panel's 2021 measurements.

        ``n_tests`` caps the total row count; by default every unit tests
        ``tests_per_day`` times daily across the ten available months
        (~24k rows for the State-A panel, matching Table 1's 25.9k scale).
        """
        with span(
            "vendor.mba.generate",
            state=self.state,
            n_tests=-1 if n_tests is None else n_tests,
        ) as sp:
            table = self._generate(n_tests)
            sp.set(rows=len(table))
        obs_metrics.counter("tests.generated").inc(len(table))
        quality = get_quality()
        if quality.enabled:
            quality.field("mba.download_mbps").observe_array(
                table["download_mbps"]
            )
            quality.field("mba.upload_mbps").observe_array(
                table["upload_mbps"]
            )
        return table

    def _generate(self, n_tests: int | None) -> ColumnTable:
        units = self.build_units()
        rng = np.random.default_rng(self.seed + 11)
        days_per_month = 30
        total_default = int(
            self.n_units * self.tests_per_day * days_per_month * len(MBA_MONTHS)
        )
        total = total_default if n_tests is None else min(n_tests, 10**9)
        columns: dict[str, list] = {name: [] for name in MBA_COLUMNS}
        emitted = 0
        # Round-robin units through day slots so every unit contributes
        # evenly, as a managed panel does.
        while emitted < total:
            for unit in units:
                if emitted >= total:
                    break
                month = int(rng.choice(MBA_MONTHS))
                hour = int(rng.integers(0, 24))  # panels test around the clock
                outcome = self.path.run_test(unit, self.profile, hour, rng)
                columns["unit_id"].append(unit.user_id)
                columns["state"].append(self.state)
                columns["isp"].append(self.catalog.isp_name)
                columns["download_mbps"].append(outcome.download_mbps)
                columns["upload_mbps"].append(outcome.upload_mbps)
                columns["month"].append(month)
                columns["hour"].append(hour)
                columns["tier"].append(unit.tier)
                emitted += 1
        return ColumnTable(columns)
