"""M-Lab NDT simulator.

NDT "establishes a single TCP connection to quantify uplink/downlink
speeds" and archives download and upload tests as *separate* records --
"NDT measurements do not associate an upload speed test with a download
speed test initiated by the same client" (Section 3.2).  This simulator
reproduces both properties: tests run through the single-flow profile
(with its documented under-measurement) and each logical session emits a
download record and, usually within two minutes, an upload record from
the same client IP, so the 120-second join of
:mod:`repro.pipeline.ndt_join` has realistic input.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.frame import ColumnTable
from repro.market.isps import city_catalog
from repro.market.plans import PlanCatalog
from repro.market.population import (
    PopulationConfig,
    SubscriberPopulation,
    default_city_config,
)
from repro.netsim.latency import LatencyModel
from repro.netsim.path import SINGLE_FLOW_NDT_PROFILE, FlowProfile, PathSimulator
from repro.netsim.servers import MLAB_POOL
from repro.obs import metrics as obs_metrics
from repro.obs.quality import get_quality
from repro.obs.trace import span
from repro.vendors.schema import MLAB_COLUMNS, sample_test_hour, sample_test_month

__all__ = ["MLabSimulator"]

_SECONDS_PER_DAY = 86_400


class MLabSimulator:
    """Simulate M-Lab NDT measurements for one city.

    Parameters
    ----------
    city, catalog, seed:
        As for :class:`~repro.vendors.ookla.OoklaSimulator`.
    config:
        Population config; defaults to the M-Lab-calibrated tier mix
        (M-Lab skews further toward low tiers than Ookla, Tables 3/5-7).
    upload_followup_prob:
        Probability a download test is followed by an upload test from the
        same client within the join window.
    stray_upload_prob:
        Probability of an extra upload test that has no paired download
        within the window (exercises the join's earliest-match rule).
    """

    def __init__(
        self,
        city: str,
        catalog: PlanCatalog | None = None,
        config: PopulationConfig | None = None,
        profile: FlowProfile = SINGLE_FLOW_NDT_PROFILE,
        seed: int = 0,
        upload_followup_prob: float = 0.92,
        stray_upload_prob: float = 0.06,
    ):
        self.city = city.upper()
        self.catalog = catalog or city_catalog(self.city)
        # NDT is web-only: no device metadata is ever recorded.
        self.config = config or default_city_config(self.city, "mlab")
        self.profile = profile
        self.seed = seed
        self.upload_followup_prob = upload_followup_prob
        self.stray_upload_prob = stray_upload_prob
        self.population = SubscriberPopulation(
            self.city, self.catalog, self.config, seed=seed
        )
        # M-Lab's sparser pool (Section 3.2: ~500 servers worldwide)
        # sits farther from the client; the longer RTT compounds the
        # single-flow under-measurement via the Mathis term.
        self.path = PathSimulator(
            latency_model=LatencyModel(**MLAB_POOL.latency_model_kwargs()),
            seed=seed,
        )

    def generate(self, n_sessions: int) -> ColumnTable:
        """Generate records for ``n_sessions`` NDT sessions.

        A session is one user visit: one download record plus usually one
        upload record 5-90 s later (sometimes missing, sometimes
        duplicated, occasionally outside the 120 s window), so the output
        row count exceeds ``n_sessions``.
        """
        if n_sessions < 0:
            raise ValueError("n_sessions cannot be negative")
        with span(
            "vendor.mlab.generate", city=self.city, n_sessions=n_sessions
        ) as sp:
            table = self._generate(n_sessions)
            sp.set(rows=len(table))
        obs_metrics.counter("tests.generated").inc(len(table))
        quality = get_quality()
        if quality.enabled:
            # NDT records are one-directional; sketch each direction.
            speeds = np.asarray(table["speed_mbps"], dtype=float)
            is_down = table["direction"] == "download"
            quality.field("mlab.download_mbps").observe_array(
                speeds[is_down]
            )
            quality.field("mlab.upload_mbps").observe_array(
                speeds[~is_down]
            )
        return table

    def _generate(self, n_sessions: int) -> ColumnTable:
        rng = np.random.default_rng(self.seed + 2)
        users = self.population.generate_users(
            n_sessions, seed=self.seed + 3
        )
        columns: dict[str, list] = {name: [] for name in MLAB_COLUMNS}
        record_index = 0

        def emit(
            user, direction: str, speed: float, rtt: float,
            timestamp: float, month: int, hour: int, server_ip: str,
        ) -> None:
            nonlocal record_index
            columns["test_id"].append(
                f"ndt-{self.city}-{record_index:08d}"
            )
            columns["client_ip"].append(_client_ip(user.user_id))
            columns["server_ip"].append(server_ip)
            columns["asn"].append(_asn_for_isp(self.catalog.isp_name))
            columns["city"].append(self.city)
            columns["isp"].append(self.catalog.isp_name)
            columns["direction"].append(direction)
            columns["speed_mbps"].append(speed)
            columns["rtt_ms"].append(rtt)
            columns["timestamp_s"].append(timestamp)
            columns["month"].append(month)
            columns["hour"].append(hour)
            columns["true_tier"].append(user.tier)
            record_index += 1

        for session_index in range(n_sessions):
            user = users[session_index % len(users)]
            month = sample_test_month(rng)
            hour = sample_test_hour(rng)
            day_of_year = (month - 1) * 30 + int(rng.integers(0, 28))
            timestamp = float(
                day_of_year * _SECONDS_PER_DAY
                + hour * 3600
                + rng.integers(0, 3600)
            )
            # NDT routes a session to one nearby server; both directions
            # of a visit hit the same server, which is what makes the
            # same-client/same-server join of Section 3.2 work.
            server_ip = f"203.0.113.{int(rng.integers(1, 16))}"
            outcome = self.path.run_test(user, self.profile, hour, rng)
            emit(
                user, "download", outcome.download_mbps, outcome.rtt_ms,
                timestamp, month, hour, server_ip,
            )
            if rng.random() < self.upload_followup_prob:
                delay = float(rng.uniform(5.0, 90.0))
                emit(
                    user, "upload", outcome.upload_mbps, outcome.rtt_ms,
                    timestamp + delay, month, hour, server_ip,
                )
            if rng.random() < self.stray_upload_prob:
                # A second upload far outside the window -- the join must
                # prefer the earliest in-window candidate and ignore this.
                stray = self.path.run_test(user, self.profile, hour, rng)
                emit(
                    user, "upload", stray.upload_mbps, stray.rtt_ms,
                    timestamp + float(rng.uniform(200.0, 3000.0)),
                    month, hour, server_ip,
                )
        return ColumnTable(columns)


def _stable_token(text: str, modulus: int) -> int:
    """Process-independent hash (str hash() is salted per interpreter)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little") % modulus


def _client_ip(user_id: str) -> str:
    """Deterministic per-user public IP (one IP per user in this model)."""
    token = _stable_token(user_id, 254 * 254)
    return f"198.51.{token // 254}.{token % 254 + 1}"


def _asn_for_isp(isp_name: str) -> int:
    """Stable fake ASN per ISP name."""
    return 64500 + _stable_token(isp_name, 100)
