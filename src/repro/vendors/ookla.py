"""Ookla Speedtest simulator.

Generates a year of Speedtest Intelligence-style records for one city's
dominant ISP.  Methodology per Section 3.1: "a nearby test server is
selected and multiple TCP connections are used to calculate the
throughput"; native-application rows identify the device platform, and
Android rows additionally carry WiFi band, RSSI and available kernel
memory; web rows carry no device metadata.
"""

from __future__ import annotations

import numpy as np

from repro.frame import ColumnTable
from repro.market.isps import city_catalog
from repro.market.plans import PlanCatalog
from repro.market.population import (
    PopulationConfig,
    Subscriber,
    SubscriberPopulation,
    default_city_config,
)
from repro.netsim.latency import LatencyModel
from repro.netsim.path import MULTI_FLOW_PROFILE, FlowProfile, PathSimulator
from repro.netsim.servers import OOKLA_POOL
from repro.obs import metrics as obs_metrics
from repro.obs.quality import get_quality
from repro.obs.trace import span
from repro.vendors.schema import OOKLA_COLUMNS, sample_test_hour, sample_test_month

__all__ = ["OoklaSimulator"]


class OoklaSimulator:
    """Simulate Ookla Speedtest measurements for one city.

    Parameters
    ----------
    city:
        City id ("A"-"D").
    catalog:
        Plan catalog; defaults to the city's dominant ISP menu.
    config:
        Population config; defaults to the Table 3/5-7 calibrated Ookla mix.
    profile:
        TCP methodology; defaults to the multi-flow profile.
    seed:
        Master seed -- generation is fully deterministic per seed.

    Examples
    --------
    >>> table = OoklaSimulator("A", seed=1).generate(200)
    >>> set(table.column_names) == set(OOKLA_COLUMNS)
    True
    """

    def __init__(
        self,
        city: str,
        catalog: PlanCatalog | None = None,
        config: PopulationConfig | None = None,
        profile: FlowProfile = MULTI_FLOW_PROFILE,
        seed: int = 0,
    ):
        self.city = city.upper()
        self.catalog = catalog or city_catalog(self.city)
        self.config = config or default_city_config(self.city, "ookla")
        self.profile = profile
        self.seed = seed
        self.population = SubscriberPopulation(
            self.city, self.catalog, self.config, seed=seed
        )
        # Ookla's dense server pool puts a test server nearby
        # (Section 3.1: >16k servers), shortening the base RTT.
        self.path = PathSimulator(
            latency_model=LatencyModel(**OOKLA_POOL.latency_model_kwargs()),
            seed=seed,
        )

    # ------------------------------------------------------------------
    def generate_users(self, n_tests: int) -> list[Subscriber]:
        """Enough subscribers to cover ``n_tests`` measurements."""
        if n_tests < 0:
            raise ValueError("n_tests cannot be negative")
        rng = np.random.default_rng(self.seed)
        users: list[Subscriber] = []
        total = 0
        batch = max(64, n_tests // 2)
        while total < n_tests:
            new = self.population.generate_users(
                batch, seed=int(rng.integers(0, 2**63))
            )
            for user in new:
                users.append(user)
                total += user.n_tests
                if total >= n_tests:
                    break
        return users

    def generate(self, n_tests: int) -> ColumnTable:
        """Generate approximately ``n_tests`` Speedtest records.

        Each subscriber contributes their full test count, so the output
        has at least ``n_tests`` rows (a user's tests are never split).
        """
        with span(
            "vendor.ookla.generate", city=self.city, n_tests=n_tests
        ) as sp:
            table = self._generate(n_tests)
            sp.set(rows=len(table))
        obs_metrics.counter("tests.generated").inc(len(table))
        quality = get_quality()
        if quality.enabled:
            quality.field("ookla.download_mbps").observe_array(
                table["download_mbps"]
            )
            quality.field("ookla.upload_mbps").observe_array(
                table["upload_mbps"]
            )
            quality.field("ookla.latency_ms").observe_array(
                table["latency_ms"]
            )
        return table

    def _generate(self, n_tests: int) -> ColumnTable:
        users = self.generate_users(n_tests)
        rng = np.random.default_rng(self.seed + 1)
        columns: dict[str, list] = {name: [] for name in OOKLA_COLUMNS}
        test_index = 0
        for user in users:
            # A user's repeated tests cluster within a couple of months --
            # people test while debugging a problem, not uniformly.
            anchor_month = sample_test_month(rng)
            for _ in range(user.n_tests):
                month = int(
                    np.clip(anchor_month + rng.integers(-1, 2), 1, 12)
                )
                hour = sample_test_hour(rng)
                outcome = self.path.run_test(user, self.profile, hour, rng)
                is_android = user.platform == "android"
                is_web = user.platform == "web"
                columns["test_id"].append(
                    f"ookla-{self.city}-{test_index:08d}"
                )
                columns["user_id"].append(user.user_id)
                columns["city"].append(self.city)
                columns["isp"].append(self.catalog.isp_name)
                columns["platform"].append(user.platform)
                columns["origin"].append("web" if is_web else "native")
                columns["access"].append(
                    "unknown" if is_web else user.access
                )
                columns["download_mbps"].append(outcome.download_mbps)
                columns["upload_mbps"].append(outcome.upload_mbps)
                columns["latency_ms"].append(outcome.rtt_ms)
                columns["month"].append(month)
                columns["hour"].append(hour)
                columns["wifi_band_ghz"].append(
                    user.household.band_ghz if is_android else np.nan
                )
                columns["rssi_dbm"].append(
                    outcome.conditions.rssi_dbm
                    if is_android and outcome.conditions.rssi_dbm is not None
                    else np.nan
                )
                columns["memory_gb"].append(
                    user.memory_gb if is_android else np.nan
                )
                columns["true_tier"].append(user.tier)
                test_index += 1
        return ColumnTable(columns)
