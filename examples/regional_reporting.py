"""Regional broadband reporting done right (and wrong).

Section 2 recounts a congressional-district report that ranked regions
by the raw median of aggregated speed tests and steered buildout funds
accordingly.  This example rebuilds that report for City-A three ways:

1. the naive raw median (what the original report used);
2. the tier-rebalanced median (correcting the low-tier sampling skew);
3. a per-tier service scorecard (is each plan delivering what it
   sells?), which is the question funding decisions actually need.

It also scans for households whose subscription changed mid-year --
upgrades that a naive month-over-month trend would misread as network
improvement.

Run:  python examples/regional_reporting.py
"""

import numpy as np

from repro import OoklaSimulator, city_catalog, contextualize
from repro.core import detect_tier_changes
from repro.pipeline import debiased_summary
from repro.pipeline.report import format_table
from repro.stats import bootstrap_ci


def main() -> None:
    catalog = city_catalog("A")
    tests = OoklaSimulator("A", seed=21).generate(20_000)
    ctx = contextualize(tests, catalog)
    table = ctx.table

    print("1. The naive report: one number for the whole city")
    summary = debiased_summary(table)
    lo, hi = bootstrap_ci(
        np.asarray(table["download_mbps"], dtype=float), seed=1
    )
    print(
        f"   raw median: {summary['raw_median']:.1f} Mbps "
        f"(95% CI {lo:.1f}-{hi:.1f})"
    )
    print(
        f"   tier-rebalanced median: {summary['debiased_median']:.1f} "
        "Mbps -- the raw number under-states the city because the "
        "sample skews to low-tier subscribers.\n"
    )

    print("2. The per-tier scorecard: is each plan delivering?")
    rows = []
    for group_label in ctx.group_labels:
        group_rows = ctx.rows_for_group(group_label)
        normalized = np.asarray(
            group_rows["normalized_download"], dtype=float
        )
        lo, hi = bootstrap_ci(normalized, seed=2)
        rows.append(
            [
                group_label,
                len(group_rows),
                round(float(np.median(normalized)), 2),
                f"[{lo:.2f}, {hi:.2f}]",
            ]
        )
    print(
        format_table(
            rows,
            ["tier group", "tests", "median dl/plan", "95% CI"],
        )
    )
    print(
        "   Low tiers deliver their plans; premium tiers measure far "
        "below theirs -- mostly local (WiFi/device) limits, per the "
        "diagnosis analyses.\n"
    )

    print("3. Subscription changes that would pollute a trend line")
    native = table.filter(table["origin"] == "native")
    changes = detect_tier_changes(native)
    if changes:
        for change in changes[:8]:
            direction = "upgrade" if change.is_upgrade else "downgrade"
            print(
                f"   {change.user_id}: tier {change.old_tier} -> "
                f"{change.new_tier} in month {change.month} ({direction})"
            )
    else:
        print("   none detected (the simulated population is stable)")
    print(
        "\nTakeaway: fund on per-plan delivery gaps, not on a raw "
        "median that mostly measures what people chose to buy."
    )


if __name__ == "__main__":
    main()
