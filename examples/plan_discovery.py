"""Market discovery: find the dominant ISP and its plan menu.

Reproduces the Section 3.1/4.1 preparation workflow that BST depends on:

1. Use Form 477 coverage records to pick the city's dominant ISP (the
   one covering the most census blocks).
2. Sample residential street addresses (the Zillow step).
3. Query the ISP's plan menu at each address with a rate-limited tool
   and verify the paper's observation that the menu is city-wide.

Run:  python examples/plan_discovery.py
"""

from repro.market.addresses import AddressDataset
from repro.market.census import build_city_form477
from repro.market.isps import city_catalog
from repro.market.query_tool import PlanQueryTool, discover_city_menu
from repro.pipeline.report import format_table


def main() -> None:
    city = "A"
    truth = city_catalog(city)

    print("Step 1: Form 477 -- who covers the most census blocks?")
    form477 = build_city_form477(city, truth.isp_name, seed=1)
    rows = [
        [isp, form477.blocks_covered(isp), form477.households_covered(isp)]
        for isp in form477.isp_names
    ]
    print(format_table(rows, ["ISP", "blocks", "households"]))
    dominant = form477.dominant_isp()
    print(f"Dominant ISP: {dominant}\n")

    print("Step 2: sample residential addresses ...")
    addresses = AddressDataset(form477.grid, seed=2)
    sample = addresses.sample(5, seed=3)
    for address in sample:
        print(f"  {address.formatted}")

    print(
        "\nStep 3: query the plan menu at 1,000 sampled addresses "
        "(rate-limited) ..."
    )
    tool = PlanQueryTool(truth, query_budget=10_000)
    discovered = discover_city_menu(tool, addresses, sample_size=1_000)
    print(f"Queries issued: {tool.queries_issued}")
    print("Discovered menu (identical at every address):")
    print(
        format_table(
            [
                [p.tier, p.download_mbps, p.upload_mbps]
                for p in discovered.plans
            ],
            ["tier", "download (Mbps)", "upload (Mbps)"],
        )
    )
    assert discovered == truth
    print(
        "\nThe discovered menu matches the ground truth -- this is the "
        "catalog knowledge that seeds the BST upload stage."
    )


if __name__ == "__main__":
    main()
