"""FCC challenge-process triage: is the network or the plan slow?

The paper's motivating policy scenario (Sections 1 and 8): communities
submit crowdsourced speed tests to challenge provider coverage claims.
A naive challenge flags every slow test.  With BST context, a test is
only challenge-worthy when it under-performs *its own subscribed plan*
without an identifiable local cause (2.4 GHz WiFi, weak RSSI, a
memory-starved device).

Run:  python examples/challenge_process.py
"""

import numpy as np

from repro import OoklaSimulator, city_catalog, contextualize
from repro.pipeline.report import format_table

SLOW_THRESHOLD_MBPS = 25.0  # the classic FCC broadband floor
UNDERPERFORMANCE_RATIO = 0.5  # below half of the subscribed rate


def main() -> None:
    catalog = city_catalog("A")
    tests = OoklaSimulator("A", seed=7).generate(20_000)
    ctx = contextualize(tests, catalog)
    table = ctx.table

    downloads = np.asarray(table["download_mbps"], dtype=float)
    normalized = np.asarray(table["normalized_download"], dtype=float)

    naive_flags = downloads < SLOW_THRESHOLD_MBPS
    print(
        f"Naive challenge: {naive_flags.sum()} of {len(table)} tests "
        f"below {SLOW_THRESHOLD_MBPS:g} Mbps "
        f"({naive_flags.mean():.0%})."
    )

    # Of those, how many are simply low-tier plans performing as sold?
    plan_limited = naive_flags & (normalized >= UNDERPERFORMANCE_RATIO)
    print(
        f"... but {plan_limited.sum()} of them "
        f"({plan_limited.sum() / max(naive_flags.sum(), 1):.0%}) are "
        "within expectations for their subscribed plan."
    )

    # Contextualised challenge: under-performing vs plan, and no local
    # explanation we can identify from the metadata.
    under = normalized < UNDERPERFORMANCE_RATIO
    band = np.asarray(table["wifi_band_ghz"], dtype=float)
    rssi = np.asarray(table["rssi_dbm"], dtype=float)
    memory = np.asarray(table["memory_gb"], dtype=float)
    locally_explained = (
        (band == 2.4)
        | (np.isfinite(rssi) & (rssi <= -70.0))
        | (np.isfinite(memory) & (memory < 2.0))
    )
    challenge_worthy = under & ~locally_explained
    print(
        f"\nContextualised challenge: {under.sum()} tests under-perform "
        f"their plan; {challenge_worthy.sum()} remain after removing "
        "tests with an identifiable local bottleneck."
    )

    rows = []
    for group_label in ctx.group_labels:
        mask = np.asarray(table["bst_group"]) == group_label
        n_under = int((under & mask).sum())
        n_challenge = int((challenge_worthy & mask).sum())
        rows.append(
            [group_label, int(mask.sum()), n_under, n_challenge]
        )
    print()
    print(
        format_table(
            rows,
            ["group", "tests", "under-performing", "challenge-worthy"],
        )
    )
    print(
        "\nTakeaway: without subscription-tier context the challenge "
        "list is dominated by plan-limited and locally-bottlenecked "
        "tests that the ISP would rightly reject."
    )


if __name__ == "__main__":
    main()
