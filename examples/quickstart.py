"""Quickstart: simulate a city, contextualise it, read the skew.

Generates a year of Ookla-style measurements for City-A's dominant ISP,
runs the BST methodology to attach subscription-tier context, and shows
the paper's headline observation: the raw city median says little,
because most tests come from the lower subscription tiers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import OoklaSimulator, city_catalog, contextualize
from repro.pipeline.report import format_table


def main() -> None:
    catalog = city_catalog("A")
    print(f"Catalog: {catalog}\n")

    print("Generating ~20k Ookla measurements for City-A ...")
    tests = OoklaSimulator("A", seed=0).generate(20_000)

    print("Fitting the BST methodology (upload stage, download stage) ...")
    ctx = contextualize(tests, catalog)
    table = ctx.table

    city_median = float(np.median(table["download_mbps"]))
    print(f"\nUncontextualised city median: {city_median:.1f} Mbps")
    print("... which mixes six different subscription plans:\n")

    rows = []
    for group_label in ctx.group_labels:
        rows_for_group = ctx.rows_for_group(group_label)
        rows.append(
            [
                group_label,
                len(rows_for_group),
                round(
                    float(np.median(rows_for_group["download_mbps"])), 1
                ),
                round(
                    float(
                        np.median(rows_for_group["normalized_download"])
                    ),
                    2,
                ),
            ]
        )
    print(
        format_table(
            rows,
            ["upload group", "tests", "median dl (Mbps)", "median dl / plan"],
        )
    )

    low_share = len(ctx.rows_for_group("Tier 1-3")) / len(table)
    print(
        f"\n{low_share:.0%} of tests come from the lowest-tier plans -- "
        "aggregates over the raw data describe those plans, not the "
        "network."
    )


if __name__ == "__main__":
    main()
