"""Vendor audit: Ookla vs M-Lab on matched subscription tiers.

Reproduces the Section 6.3 workflow end to end: generate both vendors'
datasets for the same city and ISP, associate NDT upload records with
download records via the 120-second window (Section 3.2), contextualise
both with BST, and compare normalised download speeds per tier.

Run:  python examples/vendor_audit.py
"""

from repro import (
    MLabSimulator,
    OoklaSimulator,
    city_catalog,
    compare_vendors,
    contextualize,
    join_ndt_tests,
)
from repro.pipeline.report import format_table


def main() -> None:
    catalog = city_catalog("A")

    print("Generating Ookla (multi-flow) measurements ...")
    ookla_raw = OoklaSimulator("A", seed=3).generate(15_000)
    ookla = contextualize(ookla_raw, catalog)

    print("Generating M-Lab NDT (single-flow) records ...")
    ndt_raw = MLabSimulator("A", seed=4).generate(15_000)
    print(
        f"  {len(ndt_raw)} direction-separated NDT records; joining "
        "uploads to downloads (120 s window, same client+server IP) ..."
    )
    joined = join_ndt_tests(ndt_raw)
    print(f"  {len(joined)} joined download/upload pairs.")
    mlab = contextualize(joined, catalog)

    comparison = compare_vendors(ookla, mlab)
    rows = []
    for label in comparison.group_labels:
        ookla_med, mlab_med = comparison.medians()[label]
        rows.append(
            [
                label,
                round(ookla_med, 2),
                round(mlab_med, 2),
                round(comparison.lag_factors()[label], 2),
            ]
        )
    print()
    print(
        format_table(
            rows,
            ["tier group", "Ookla med (dl/plan)", "M-Lab med", "lag"],
        )
    )
    print(
        "\nM-Lab's single-TCP-flow NDT under-reports relative to Ookla's "
        "multi-flow test in every tier (the paper: up to 2x).  Policy "
        "conclusions must account for the test methodology."
    )


if __name__ == "__main__":
    main()
