"""Per-user triage: is it the plan, the WiFi, or the device?

The paper's introduction poses the question every slow speed test
raises: "is it because the access network is under-performing, the user
has purchased a lower-tier plan, or the user's home WiFi network is
misconfigured?"  This example answers it for individual users: estimate
each heavy user's subscription tier from their test history, then rank
the local factors that explain their shortfall.

Run:  python examples/diagnose_home_network.py
"""

import numpy as np

from repro import OoklaSimulator, city_catalog, contextualize
from repro.pipeline.report import format_table
from repro.stats.descriptive import consistency_factor


def diagnose(user_rows, group_label: str) -> str:
    """One-line diagnosis from the user's Android metadata."""
    band = np.asarray(user_rows["wifi_band_ghz"], dtype=float)
    rssi = np.asarray(user_rows["rssi_dbm"], dtype=float)
    memory = np.asarray(user_rows["memory_gb"], dtype=float)
    normalized = np.asarray(
        user_rows["normalized_download"], dtype=float
    )
    if np.nanmedian(normalized) >= 0.7:
        return "performing to plan"
    causes = []
    if np.isfinite(band).any() and np.nanmedian(band) < 5.0:
        causes.append("2.4 GHz WiFi band")
    if np.isfinite(rssi).any() and np.nanmedian(rssi) <= -65.0:
        causes.append("weak RSSI (router placement)")
    if np.isfinite(memory).any() and np.nanmedian(memory) < 2.0:
        causes.append("memory-starved device")
    if causes:
        return "local bottleneck: " + ", ".join(causes)
    return "under-performing vs plan -- candidate for an ISP report"


def main() -> None:
    catalog = city_catalog("A")
    tests = OoklaSimulator("A", seed=11).generate(20_000)
    ctx = contextualize(tests, catalog)
    table = ctx.table

    android = table.filter(table["platform"] == "android")
    rows = []
    diagnosed = 0
    for (user,), user_rows in android.groupby("user_id"):
        if len(user_rows) < 5 or diagnosed >= 12:
            continue
        diagnosed += 1
        downloads = np.asarray(user_rows["download_mbps"], dtype=float)
        tier = int(np.median(user_rows["bst_tier"]))
        plan = catalog.plan_for_tier(tier)
        rows.append(
            [
                user,
                len(user_rows),
                plan.label,
                round(float(np.median(downloads)), 1),
                round(consistency_factor(downloads), 2),
                diagnose(user_rows, ""),
            ]
        )
    print(
        format_table(
            rows,
            [
                "user",
                "tests",
                "inferred plan",
                "median dl",
                "consistency",
                "diagnosis",
            ],
        )
    )
    print(
        "\nEach row answers the paper's triage question for one "
        "household: plan-limited, locally bottlenecked, or a genuine "
        "access-network problem."
    )


if __name__ == "__main__":
    main()
